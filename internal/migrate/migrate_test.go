package migrate_test

import (
	"fmt"
	"testing"

	"nose/internal/backend"
	"nose/internal/cost"
	"nose/internal/hotel"
	"nose/internal/migrate"
	"nose/internal/model"
	"nose/internal/schema"
)

// guestView is the paper's Fig. 3 materialized view:
// [HotelCity][RoomRate, GuestID][GuestName, GuestEmail].
func guestView(t *testing.T, g *model.Graph) *schema.Index {
	t.Helper()
	path, err := g.ResolvePath([]string{"Guest", "Reservations", "Room", "Hotel"})
	if err != nil {
		t.Fatal(err)
	}
	hotelE, room, guest := g.MustEntity("Hotel"), g.MustEntity("Room"), g.MustEntity("Guest")
	return schema.New(path,
		[]*model.Attribute{hotelE.Attribute("HotelCity")},
		[]*model.Attribute{room.Attribute("RoomRate"), guest.Key()},
		[]*model.Attribute{guest.Attribute("GuestName"), guest.Attribute("GuestEmail")},
	)
}

// guestPK is a primary-key family over the Guest entity alone.
func guestPK(t *testing.T, g *model.Graph) *schema.Index {
	t.Helper()
	guest := g.MustEntity("Guest")
	return schema.New(model.NewPath(guest),
		[]*model.Attribute{guest.Key()},
		nil,
		[]*model.Attribute{guest.Attribute("GuestName")},
	)
}

// tinyDataset populates a deterministic hotel dataset small enough to
// count by hand: 2 hotels, 4 rooms, 3 guests, 5 reservations.
func tinyDataset(t *testing.T, g *model.Graph) *backend.Dataset {
	t.Helper()
	ds := backend.NewDataset(g)
	hotelE := g.MustEntity("Hotel")
	room := g.MustEntity("Room")
	guest := g.MustEntity("Guest")
	res := g.MustEntity("Reservation")
	add := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		add(ds.AddEntity(hotelE, map[string]backend.Value{
			"HotelID": i, "HotelCity": fmt.Sprintf("City%d", i),
		}))
	}
	for i := 0; i < 4; i++ {
		add(ds.AddEntity(room, map[string]backend.Value{
			"RoomID": i, "RoomRate": float64(100 + 10*i),
		}))
		add(ds.Connect(hotelE.Edge("Rooms"), int64(i%2), int64(i)))
	}
	for i := 0; i < 3; i++ {
		add(ds.AddEntity(guest, map[string]backend.Value{
			"GuestID": i, "GuestName": fmt.Sprintf("G%d", i), "GuestEmail": fmt.Sprintf("g%d@x", i),
		}))
	}
	for i := 0; i < 5; i++ {
		add(ds.AddEntity(res, map[string]backend.Value{"ResID": i}))
		add(ds.Connect(room.Edge("Reservations"), int64(i%4), int64(i)))
		add(ds.Connect(guest.Edge("Reservations"), int64(i%3), int64(i)))
	}
	return ds
}

func TestBuildCostTracksSizeAndScale(t *testing.T) {
	g := hotel.Graph()
	p := migrate.DefaultCostParams()
	view, pk := guestView(t, g), guestPK(t, g)
	if c := migrate.BuildCost(pk, p); c <= p.PerFamilyMillis {
		t.Errorf("pk build cost %v, want above the fixed charge %v", c, p.PerFamilyMillis)
	}
	// The multi-entity view materializes the reservation fanout; it must
	// cost more than the single-entity primary key family.
	if migrate.BuildCost(view, p) <= migrate.BuildCost(pk, p) {
		t.Errorf("view (%v) not costlier than pk (%v)",
			migrate.BuildCost(view, p), migrate.BuildCost(pk, p))
	}
	half := p.Scale(0.5)
	if got, want := migrate.BuildCost(view, half), migrate.BuildCost(view, p)/2; got != want {
		t.Errorf("scaled cost %v, want %v", got, want)
	}
	if migrate.EstimatedCost([]*schema.Index{view, pk}, p) !=
		migrate.BuildCost(view, p)+migrate.BuildCost(pk, p) {
		t.Error("EstimatedCost is not the sum of BuildCosts")
	}
}

func TestDiff(t *testing.T) {
	g := hotel.Graph()
	view, pk := guestView(t, g), guestPK(t, g)

	next := schema.NewSchema()
	next.Add(view)
	next.Add(pk)
	build, drop := migrate.Diff(nil, next)
	if len(build) != 2 || len(drop) != 0 {
		t.Fatalf("nil prev: build=%d drop=%d, want 2/0", len(build), len(drop))
	}

	build, drop = migrate.Diff(next, next)
	if len(build) != 0 || len(drop) != 0 {
		t.Fatalf("identical schemas: build=%d drop=%d, want 0/0", len(build), len(drop))
	}

	prev := schema.NewSchema()
	prev.Add(pk)
	only := schema.NewSchema()
	only.Add(view)
	build, drop = migrate.Diff(prev, only)
	if len(build) != 1 || build[0].ID() != view.ID() {
		t.Errorf("build = %v, want the view", build)
	}
	if len(drop) != 1 || drop[0].ID() != pk.ID() {
		t.Errorf("drop = %v, want the pk family", drop)
	}
}

func TestApplyBuildsAndCharges(t *testing.T) {
	g := hotel.Graph()
	ds := tinyDataset(t, g)
	s := backend.NewStore(cost.DefaultParams())
	p := migrate.DefaultCostParams()

	sch := schema.NewSchema()
	view := sch.Add(guestView(t, g))
	pk := sch.Add(guestPK(t, g))

	res, err := migrate.Apply(ds, s, []*schema.Index{view, pk}, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Built) != 2 || res.Built[0] != view.Name || res.Built[1] != pk.Name {
		t.Errorf("Built = %v", res.Built)
	}
	// 5 reservations materialize 5 view records; 3 guests 3 pk records.
	if res.Records != 8 {
		t.Errorf("Records = %d, want 8", res.Records)
	}
	if res.SimMillis <= 2*p.PerFamilyMillis {
		t.Errorf("SimMillis = %v, want above the fixed charges", res.SimMillis)
	}
	// The built family must be readable.
	got, err := s.Get(view.Name, backend.GetRequest{Partition: []backend.Value{"City0"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) == 0 {
		t.Error("no records materialized for City0")
	}

	// A second migration drops the view; reading it must fail.
	res, err = migrate.Apply(ds, s, nil, []*schema.Index{view}, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dropped) != 1 || res.Dropped[0] != view.Name || res.SimMillis != 0 {
		t.Errorf("drop result = %+v", res)
	}
	if _, err := s.Get(view.Name, backend.GetRequest{Partition: []backend.Value{"City0"}}); err == nil {
		t.Error("dropped family still readable")
	}
}

func TestApplyRejectsUnnamedIndex(t *testing.T) {
	g := hotel.Graph()
	ds := tinyDataset(t, g)
	s := backend.NewStore(cost.DefaultParams())
	if _, err := migrate.Apply(ds, s, []*schema.Index{guestPK(t, g)}, nil, migrate.DefaultCostParams()); err == nil {
		t.Error("unnamed index accepted")
	}
}
