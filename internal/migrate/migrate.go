// Package migrate models the cost and mechanics of changing a running
// application's physical schema: which column families a new
// recommendation adds or removes relative to the installed one, what
// building each new family is estimated to cost (derived from the
// schema size statistics in internal/schema), and how to materialize
// the change against a record store under simulated-time accounting.
//
// The estimated build cost feeds the multi-interval BIP in
// search.AdviseSeries, where it is the link between adjacent phases:
// re-advising is only worthwhile when the workload-cost savings of a
// new schema exceed the charge for building its families. The same
// parameters price the measured migration step in internal/harness, so
// the advisor's estimate and the executed SimMillis agree in shape.
package migrate

import (
	"fmt"

	"nose/internal/backend"
	"nose/internal/cost"
	"nose/internal/schema"
)

// CostParams prices building one new column family during a migration.
// All costs are in the same abstract milliseconds as internal/cost.
type CostParams struct {
	// PerFamilyMillis is the fixed charge for creating a family
	// (metadata propagation, stream setup).
	PerFamilyMillis float64
	// PerRecordMillis is charged per record materialized into the new
	// family — one put request per record.
	PerRecordMillis float64
	// PerCellMillis is charged per attribute cell of each record.
	PerCellMillis float64
}

// DefaultCostParams derives migration prices from the record store's
// write model: each materialized record is one put request writing the
// family's cells, plus a fixed per-family setup charge.
func DefaultCostParams() CostParams {
	p := cost.DefaultParams()
	return CostParams{
		PerFamilyMillis: 2 * p.RequestCost,
		PerRecordMillis: p.InsertRequestCost,
		PerCellMillis:   p.InsertCellCost,
	}
}

// Scale multiplies all prices by f, for experiments sweeping migration
// expense.
func (p CostParams) Scale(f float64) CostParams {
	return CostParams{
		PerFamilyMillis: p.PerFamilyMillis * f,
		PerRecordMillis: p.PerRecordMillis * f,
		PerCellMillis:   p.PerCellMillis * f,
	}
}

// BuildCost estimates the cost of materializing index x as a new column
// family: the estimated record count (schema size statistics) times the
// per-record and per-cell write prices, plus the fixed family charge.
func BuildCost(x *schema.Index, p CostParams) float64 {
	cells := float64(len(x.Partition) + len(x.Clustering) + len(x.Values))
	return p.PerFamilyMillis + x.Records()*(p.PerRecordMillis+p.PerCellMillis*cells)
}

// Diff compares two schemas structurally and returns the families the
// migration from prev to next must build and may drop, in each schema's
// insertion order. A nil prev means everything in next is new.
func Diff(prev, next *schema.Schema) (build, drop []*schema.Index) {
	for _, x := range next.Indexes() {
		if prev == nil || prev.Lookup(x) == nil {
			build = append(build, x)
		}
	}
	if prev != nil {
		for _, x := range prev.Indexes() {
			if next.Lookup(x) == nil {
				drop = append(drop, x)
			}
		}
	}
	return build, drop
}

// EstimatedCost sums the estimated build cost of the given families.
// Dropping a family is free: the store discards it without per-record
// work.
func EstimatedCost(build []*schema.Index, p CostParams) float64 {
	total := 0.0
	for _, x := range build {
		total += BuildCost(x, p)
	}
	return total
}

// Store is the record-store surface a migration needs; *backend.Store
// and *backend.ReplicatedStore both satisfy it. Def lets a resumed
// migration (ResumeLive) create only the families a crash left missing
// instead of blindly re-creating — and wiping — survivors.
type Store interface {
	backend.Installer
	Drop(name string)
	Def(name string) (backend.ColumnFamilyDef, error)
}

// Result reports one executed migration.
type Result struct {
	// Built and Dropped name the families changed, in order.
	Built, Dropped []string
	// Records is the number of records materialized into new families.
	Records int
	// SimMillis is the simulated time the builds consumed: the summed
	// service time of every put, plus the per-family setup charge.
	SimMillis float64
}

// Apply executes a migration against a store: each family in build is
// created and materialized from the dataset record by record (every put
// charged at the store's simulated service time), then the families in
// drop are discarded. Unlike Dataset.Install, Apply accounts the
// simulated cost of the data it moves.
func Apply(ds *backend.Dataset, s Store, build, drop []*schema.Index, p CostParams) (*Result, error) {
	res := &Result{}
	for _, x := range build {
		if x.Name == "" {
			return nil, fmt.Errorf("migrate: index %s has no name", x)
		}
		def := backend.DefFromIndex(x)
		if err := s.Create(def); err != nil {
			return nil, fmt.Errorf("migrate: create %s: %w", x.Name, err)
		}
		res.SimMillis += p.PerFamilyMillis
		err := ds.ForEachCombination(x.Path, func(tuple map[string]backend.Value) error {
			partition := make([]backend.Value, len(def.PartitionCols))
			for i, c := range def.PartitionCols {
				partition[i] = tuple[c]
			}
			clustering := make([]backend.Value, len(def.ClusteringCols))
			for i, c := range def.ClusteringCols {
				clustering[i] = tuple[c]
			}
			values := make([]backend.Value, len(def.ValueCols))
			for i, c := range def.ValueCols {
				values[i] = tuple[c]
			}
			pr, err := s.Put(def.Name, partition, clustering, values)
			if err != nil {
				return err
			}
			res.SimMillis += pr.SimMillis
			res.Records++
			return nil
		})
		if err != nil {
			// A failed build must not leave schema debris: drop the
			// half-built family and everything this migration already
			// installed, so the caller's schema is exactly what it was
			// before Apply ran.
			s.Drop(def.Name)
			for _, name := range res.Built {
				s.Drop(name)
			}
			return nil, fmt.Errorf("migrate: build %s: %w", x.Name, err)
		}
		res.Built = append(res.Built, x.Name)
	}
	for _, x := range drop {
		s.Drop(x.Name)
		res.Dropped = append(res.Dropped, x.Name)
	}
	return res, nil
}
