package search

import (
	"fmt"

	"nose/internal/bip"
	"nose/internal/planner"
	"nose/internal/schema"
	"nose/internal/workload"
)

// extract reads the solver's variable assignment back into a
// recommendation: the selected paid column families plus every free
// family a chosen plan uses, one plan per query, and the maintenance
// plans for every (update, selected family) pair.
func (b *builder) extract(res *bip.Result, refs *colRefs, rec *Recommendation) error {
	paidSelected := map[string]bool{}
	for id, col := range refs.indexCol {
		if res.X[col] >= 0.5 {
			paidSelected[id] = true
		}
	}

	// keep admits free indexes always and paid indexes when selected.
	keep := func(x *schema.Index) bool {
		if !b.paid(x.ID()) {
			return true
		}
		return paidSelected[x.ID()]
	}

	perQuery := map[*queryBlock]*planner.Plan{}
	perGroup := map[*supportGroup]*planner.Plan{}
	for col, ref := range refs.planCols {
		if res.X[col] < 0.5 {
			continue
		}
		if ref.query != nil {
			perQuery[ref.query] = ref.plan
		} else {
			perGroup[ref.group] = ref.plan
		}
	}

	used := map[string]bool{}
	markUsed := func(pl *planner.Plan) {
		for _, x := range pl.Indexes() {
			used[x.ID()] = true
		}
	}

	for _, qb := range b.queries {
		plan := perQuery[qb]
		if plan == nil {
			plan = qb.space.Best(keep)
		}
		if plan == nil {
			return fmt.Errorf("search: no plan for query %q under the selected schema",
				workload.Label(qb.ws.Statement))
		}
		perQuery[qb] = plan
		markUsed(plan)
	}
	for _, ub := range b.updates {
		for _, g := range ub.groups {
			needed := false
			for _, x := range g.indexes {
				if paidSelected[x.ID()] {
					needed = true
					break
				}
			}
			if !needed {
				continue
			}
			plan := perGroup[g]
			if plan == nil {
				plan = g.space.Best(keep)
			}
			if plan == nil {
				return fmt.Errorf("search: no support plan for update %q",
					workload.Label(ub.ws.Statement))
			}
			perGroup[g] = plan
			markUsed(plan)
		}
	}

	// The schema: paid selections plus used free families, pool order.
	sch := schema.NewSchema()
	selected := map[string]bool{}
	for _, x := range b.pool {
		id := x.ID()
		if (b.paid(id) && paidSelected[id]) || (!b.paid(id) && used[id]) {
			selected[id] = true
			sch.Add(x)
		}
	}
	rec.Schema = sch

	for _, qb := range b.queries {
		rec.Queries = append(rec.Queries, &QueryRecommendation{
			Statement:    qb.ws,
			Plan:         perQuery[qb],
			Alternatives: executablePlans(qb.space, selected, perQuery[qb]),
		})
	}
	for _, ub := range b.updates {
		for _, x := range ub.order {
			if !selected[x.ID()] {
				continue
			}
			ur := &UpdateRecommendation{Statement: ub.ws, Plan: ub.plans[x.ID()]}
			for _, g := range ub.groups {
				if !groupNeeds(g, x) {
					continue
				}
				plan := perGroup[g]
				if plan == nil {
					plan = g.space.Best(keep)
				}
				if plan == nil {
					return fmt.Errorf("search: no support plan for update %q on %s",
						workload.Label(ub.ws.Statement), x.Name)
				}
				ur.SupportPlans = append(ur.SupportPlans, plan)
			}
			rec.Updates = append(rec.Updates, ur)
		}
	}
	return nil
}

// executablePlans filters a query's plan space to the plans whose
// column families are all installed in the recommended schema, keeping
// the space's cheapest-first order. The chosen plan is guaranteed to be
// present (prepended if the space somehow dropped it), so the harness
// always has at least one alternative to execute.
func executablePlans(space *planner.PlanSpace, installed map[string]bool, chosen *planner.Plan) []*planner.Plan {
	var out []*planner.Plan
	sawChosen := false
	for _, p := range space.Plans {
		ok := true
		for _, x := range p.Indexes() {
			if !installed[x.ID()] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if p == chosen {
			sawChosen = true
		}
		out = append(out, p)
	}
	if !sawChosen && chosen != nil {
		out = append([]*planner.Plan{chosen}, out...)
	}
	return out
}

func groupNeeds(g *supportGroup, x *schema.Index) bool {
	for _, y := range g.indexes {
		if y == x {
			return true
		}
	}
	return false
}
