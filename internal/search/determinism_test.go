package search_test

import (
	"testing"

	"nose/internal/hotel"
	"nose/internal/search"
	"nose/internal/workload"
)

// TestAdviseDeterministic: two runs on the same workload must produce
// identical schemas and plans — candidate IDs, plan ordering, and BIP
// construction are all canonicalized.
func TestAdviseDeterministic(t *testing.T) {
	run := func() *search.Recommendation {
		g := hotel.Graph()
		w := workload.New(g)
		for i, src := range []string{hotel.ExampleQuery, hotel.PrefixQuery, hotel.POIQuery} {
			q := workload.MustParseQuery(g, src)
			q.Label = string(rune('A' + i))
			w.Add(q, float64(i+1))
		}
		w.Add(workload.MustParse(g, hotel.UpdateStatements[0]), 0.5)
		w.Add(workload.MustParse(g, hotel.UpdateStatements[2]), 0.25)
		rec, err := search.Advise(w, search.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	a, b := run(), run()
	if a.Schema.String() != b.Schema.String() {
		t.Errorf("schemas differ:\n%s\nvs\n%s", a.Schema, b.Schema)
	}
	if a.Cost != b.Cost {
		t.Errorf("costs differ: %v vs %v", a.Cost, b.Cost)
	}
	if len(a.Queries) != len(b.Queries) {
		t.Fatal("query counts differ")
	}
	for i := range a.Queries {
		if a.Queries[i].Plan.Signature() != b.Queries[i].Plan.Signature() {
			t.Errorf("plan %d differs", i)
		}
	}
}

// TestAdviseCostMatchesChosenPlans: the reported optimal cost must
// equal the weighted sum of the chosen plans' costs plus maintenance.
func TestAdviseCostMatchesChosenPlans(t *testing.T) {
	g := hotel.Graph()
	w := workload.New(g)
	q := workload.MustParseQuery(g, hotel.ExampleQuery)
	w.Add(q, 2.5)
	rec, err := search.Advise(w, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 2.5 * rec.Queries[0].Plan.Cost
	if diff := rec.Cost - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("cost %v, plans sum to %v", rec.Cost, want)
	}
}
