package search_test

import (
	"math"
	"testing"

	"nose/internal/hotel"
	"nose/internal/randwork"
	"nose/internal/rubis"
	"nose/internal/search"
	"nose/internal/workload"
)

// TestAdviseDeterministic: two runs on the same workload must produce
// identical schemas and plans — candidate IDs, plan ordering, and BIP
// construction are all canonicalized.
func TestAdviseDeterministic(t *testing.T) {
	run := func() *search.Recommendation {
		g := hotel.Graph()
		w := workload.New(g)
		for i, src := range []string{hotel.ExampleQuery, hotel.PrefixQuery, hotel.POIQuery} {
			q := workload.MustParseQuery(g, src)
			q.Label = string(rune('A' + i))
			w.Add(q, float64(i+1))
		}
		w.Add(workload.MustParse(g, hotel.UpdateStatements[0]), 0.5)
		w.Add(workload.MustParse(g, hotel.UpdateStatements[2]), 0.25)
		rec, err := search.Advise(w, search.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	a, b := run(), run()
	if a.Schema.String() != b.Schema.String() {
		t.Errorf("schemas differ:\n%s\nvs\n%s", a.Schema, b.Schema)
	}
	if a.Cost != b.Cost {
		t.Errorf("costs differ: %v vs %v", a.Cost, b.Cost)
	}
	if len(a.Queries) != len(b.Queries) {
		t.Fatal("query counts differ")
	}
	for i := range a.Queries {
		if a.Queries[i].Plan.Signature() != b.Queries[i].Plan.Signature() {
			t.Errorf("plan %d differs", i)
		}
	}
}

// TestAdviseWorkerInvariance: the recommendation must be byte-identical
// for every worker count — schema rendering, objective bits, plan
// signatures, and node counts. Parallelism may only change wall-clock
// time, never the answer.
func TestAdviseWorkerInvariance(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(t *testing.T) *workload.Workload
		opt   search.Options
	}{
		{
			name: "hotel",
			build: func(t *testing.T) *workload.Workload {
				g := hotel.Graph()
				w := workload.New(g)
				for i, src := range []string{hotel.ExampleQuery, hotel.PrefixQuery, hotel.POIQuery} {
					q := workload.MustParseQuery(g, src)
					q.Label = string(rune('A' + i))
					w.Add(q, float64(i+1))
				}
				w.Add(workload.MustParse(g, hotel.UpdateStatements[0]), 0.5)
				w.Add(workload.MustParse(g, hotel.UpdateStatements[2]), 0.25)
				return w
			},
		},
		{
			name: "rubis",
			build: func(t *testing.T) *workload.Workload {
				w, _, err := rubis.Workload(rubis.Graph(rubis.DefaultConfig()))
				if err != nil {
					t.Fatal(err)
				}
				return w
			},
			// The full RUBiS program is large; bound the solve the same
			// way the benchmarks do. Worker invariance must hold even
			// under node and gap cutoffs.
			opt: search.Options{},
		},
		{
			name: "randwork",
			build: func(t *testing.T) *workload.Workload {
				// A synthetic stress workload: enough statements that
				// branch and bound expands multiple batches and the warm
				// starts cross worker boundaries.
				w, err := randwork.Generate(randwork.Config{Factor: 2, Seed: 7})
				if err != nil {
					t.Fatal(err)
				}
				return w
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(workers int) *search.Recommendation {
				opt := tc.opt
				opt.Workers = workers
				if tc.name == "rubis" || tc.name == "randwork" {
					opt.Planner.MaxPlansPerQuery = 16
					opt.MaxSupportPlans = 4
					opt.BIP.MaxNodes = 60
					opt.BIP.Gap = 0.01
				}
				rec, err := search.Advise(tc.build(t), opt)
				if err != nil {
					t.Fatal(err)
				}
				return rec
			}
			base := run(1)
			for _, workers := range []int{2, 4, 8} {
				rec := run(workers)
				if got, want := rec.Schema.String(), base.Schema.String(); got != want {
					t.Errorf("workers=%d: schema differs:\n%s\nvs workers=1:\n%s", workers, got, want)
				}
				if math.Float64bits(rec.Cost) != math.Float64bits(base.Cost) {
					t.Errorf("workers=%d: cost %v vs %v (not bit-identical)", workers, rec.Cost, base.Cost)
				}
				if rec.Stats.Nodes != base.Stats.Nodes {
					t.Errorf("workers=%d: explored %d nodes vs %d", workers, rec.Stats.Nodes, base.Stats.Nodes)
				}
				if len(rec.Queries) != len(base.Queries) {
					t.Fatalf("workers=%d: %d query plans vs %d", workers, len(rec.Queries), len(base.Queries))
				}
				for i := range rec.Queries {
					if rec.Queries[i].Plan.Signature() != base.Queries[i].Plan.Signature() {
						t.Errorf("workers=%d: plan %d differs", workers, i)
					}
				}
				if len(rec.Updates) != len(base.Updates) {
					t.Fatalf("workers=%d: %d update plans vs %d", workers, len(rec.Updates), len(base.Updates))
				}
			}
		})
	}
}

// TestAdviseCostMatchesChosenPlans: the reported optimal cost must
// equal the weighted sum of the chosen plans' costs plus maintenance.
func TestAdviseCostMatchesChosenPlans(t *testing.T) {
	g := hotel.Graph()
	w := workload.New(g)
	q := workload.MustParseQuery(g, hotel.ExampleQuery)
	w.Add(q, 2.5)
	rec, err := search.Advise(w, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 2.5 * rec.Queries[0].Plan.Cost
	if diff := rec.Cost - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("cost %v, plans sum to %v", rec.Cost, want)
	}
}
