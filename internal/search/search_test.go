package search_test

import (
	"testing"

	"nose/internal/enumerator"
	"nose/internal/hotel"
	"nose/internal/planner"
	"nose/internal/schema"
	"nose/internal/search"
	"nose/internal/workload"
)

func adviseHotel(t *testing.T, w *workload.Workload, opt search.Options) *search.Recommendation {
	t.Helper()
	rec, err := search.Advise(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestAdviseReadOnlyPicksMaterializedViews(t *testing.T) {
	g := hotel.Graph()
	w := workload.New(g)
	q := workload.MustParseQuery(g, hotel.ExampleQuery)
	q.Label = "GuestsByCity"
	w.Add(q, 1)

	rec := adviseHotel(t, w, search.Options{})
	if rec.Schema.Len() == 0 {
		t.Fatal("empty schema")
	}
	if len(rec.Queries) != 1 {
		t.Fatalf("queries = %d", len(rec.Queries))
	}
	plan := rec.Queries[0].Plan
	// With no updates the optimum is the query's materialized view:
	// one lookup, no client-side steps beyond it.
	if len(plan.Indexes()) != 1 {
		t.Errorf("chosen plan uses %d indexes:\n%s", len(plan.Indexes()), plan)
	}
	// Every index a chosen plan uses must be in the schema.
	for _, x := range plan.Indexes() {
		if rec.Schema.Lookup(x) == nil {
			t.Errorf("plan index %s missing from schema", x)
		}
	}
	if rec.Cost <= 0 {
		t.Errorf("cost = %v", rec.Cost)
	}
	if rec.Stats.Candidates == 0 || rec.Stats.PlanVariables == 0 || rec.Stats.Constraints == 0 {
		t.Errorf("stats not populated: %+v", rec.Stats)
	}
	if rec.Timings.Total <= 0 {
		t.Error("timings not populated")
	}
}

func TestAdviseMinimizesSchemaSize(t *testing.T) {
	// Two queries over the same data; phase 2 must not include column
	// families no chosen plan uses.
	g := hotel.Graph()
	w := workload.New(g)
	w.Add(workload.MustParseQuery(g, hotel.ExampleQuery), 1)
	w.Add(workload.MustParseQuery(g, hotel.PrefixQuery), 1)

	rec := adviseHotel(t, w, search.Options{})
	used := map[string]bool{}
	for _, qr := range rec.Queries {
		for _, x := range qr.Plan.Indexes() {
			used[x.ID()] = true
		}
	}
	for _, x := range rec.Schema.Indexes() {
		if !used[x.ID()] {
			t.Errorf("schema contains unused column family %s", x)
		}
	}
}

func TestAdviseUpdatesConstrainDenormalization(t *testing.T) {
	// With a heavily-weighted update on GuestName, the advisor should
	// avoid storing GuestName in the wide path-spanning view and fetch
	// it separately (normalization pressure, paper §VI).
	g := hotel.Graph()

	runWith := func(updateWeight float64) *search.Recommendation {
		w := workload.New(g)
		w.Add(workload.MustParseQuery(g, hotel.ExampleQuery), 1)
		w.Add(workload.MustParse(g, `UPDATE Guest SET GuestName = ? WHERE Guest.GuestID = ?`), updateWeight)
		return adviseHotel(t, w, search.Options{})
	}

	light := runWith(0.001)
	heavy := runWith(10_000)

	wideStoresName := func(rec *search.Recommendation) bool {
		guestName := g.MustEntity("Guest").Attribute("GuestName")
		for _, x := range rec.Schema.Indexes() {
			if x.Path.Len() > 1 && x.Contains(guestName) {
				return true
			}
		}
		return false
	}
	if !wideStoresName(light) {
		t.Error("light updates: expected denormalized view storing GuestName")
	}
	if wideStoresName(heavy) {
		t.Errorf("heavy updates: GuestName still denormalized\n%s", heavy.Schema)
	}
	// Update recommendations exist for families the update maintains.
	if len(heavy.Updates) == 0 && len(light.Updates) == 0 {
		t.Error("no update recommendations produced")
	}
}

func TestAdviseSpaceConstraint(t *testing.T) {
	g := hotel.Graph()
	unconstrained := workload.New(g)
	unconstrained.Add(workload.MustParseQuery(g, hotel.ExampleQuery), 1)
	free := adviseHotel(t, unconstrained, search.Options{})

	// Tighten the budget below the unconstrained schema size; the
	// advisor must return a smaller (cheaper-to-store) schema.
	budget := free.Schema.TotalSizeBytes() * 0.5
	w2 := workload.New(g)
	w2.Add(workload.MustParseQuery(g, hotel.ExampleQuery), 1)
	constrained := adviseHotel(t, w2, search.Options{SpaceBudgetBytes: budget})
	if constrained.Schema.TotalSizeBytes() > budget*1.001 {
		t.Errorf("schema size %.0f exceeds budget %.0f",
			constrained.Schema.TotalSizeBytes(), budget)
	}
	// The constrained workload must cost at least as much.
	if constrained.Cost < free.Cost-1e-9 {
		t.Errorf("constrained cost %v < unconstrained %v", constrained.Cost, free.Cost)
	}
}

func TestAdviseSupportPlansUseSelectedSchema(t *testing.T) {
	g := hotel.Graph()
	w := workload.New(g)
	w.Add(workload.MustParseQuery(g, hotel.ExampleQuery), 1)
	w.Add(workload.MustParse(g, hotel.UpdateStatements[0]), 0.5) // insert reservation
	rec := adviseHotel(t, w, search.Options{})

	sel := func(x *schema.Index) bool { return rec.Schema.Lookup(x) != nil }
	for _, ur := range rec.Updates {
		if rec.Schema.Lookup(ur.Plan.Index) == nil {
			t.Errorf("update recommendation for unselected family %s", ur.Plan.Index)
		}
		for _, sp := range ur.SupportPlans {
			for _, x := range sp.Indexes() {
				if !sel(x) {
					t.Errorf("support plan reads unselected family %s", x)
				}
			}
		}
	}
}

func TestAdviseMixSensitivity(t *testing.T) {
	// The same workload under a read-only and a write-heavy mix must
	// produce different schemas (paper Fig. 12's premise).
	g := hotel.Graph()
	w := workload.New(g)
	q := workload.MustParseQuery(g, hotel.ExampleQuery)
	w.AddMixed(q, map[string]float64{"read": 1, "write": 1})
	upd := workload.MustParse(g, `UPDATE Guest SET GuestName = ? WHERE Guest.GuestID = ?`)
	w.AddMixed(upd, map[string]float64{"read": 0, "write": 5000})

	w.ActiveMix = "read"
	readRec := adviseHotel(t, w, search.Options{})
	w.ActiveMix = "write"
	writeRec := adviseHotel(t, w, search.Options{})

	if readRec.Schema.String() == writeRec.Schema.String() {
		t.Error("schemas identical across mixes; expected write pressure to change the design")
	}
}

func TestAdviseQueryWithoutPlansFails(t *testing.T) {
	g := hotel.Graph()
	w := workload.New(g)
	bad := workload.MustParseQuery(g, `SELECT Room.RoomNumber FROM Room WHERE Room.RoomRate > ?`)
	w.Add(bad, 1)
	if _, err := search.Advise(w, search.Options{}); err == nil {
		t.Error("expected error for un-plannable workload")
	}
}

func TestAdviseRespectsPlannerConfig(t *testing.T) {
	g := hotel.Graph()
	w := workload.New(g)
	w.Add(workload.MustParseQuery(g, hotel.ExampleQuery), 1)
	rec := adviseHotel(t, w, search.Options{
		Planner: planner.Config{MaxPlansPerQuery: 4, RangeSelectivity: 0.5},
	})
	if rec.Schema.Len() == 0 {
		t.Fatal("empty schema under tightened planner config")
	}
}

// TestAdviseCoversEveryStatement is the paper's coverage requirement:
// the recommended schema must allow the entire workload to be
// implemented.
func TestAdviseCoversEveryStatement(t *testing.T) {
	g := hotel.Graph()
	w := workload.New(g)
	for i, src := range []string{hotel.ExampleQuery, hotel.PrefixQuery, hotel.POIQuery} {
		q := workload.MustParseQuery(g, src)
		q.Label = string(rune('A' + i))
		w.Add(q, 1)
	}
	for _, src := range hotel.UpdateStatements {
		w.Add(workload.MustParse(g, src), 0.1)
	}
	rec := adviseHotel(t, w, search.Options{})
	if len(rec.Queries) != 3 {
		t.Fatalf("plans for %d queries, want 3", len(rec.Queries))
	}
	for _, qr := range rec.Queries {
		for _, x := range qr.Plan.Indexes() {
			if rec.Schema.Lookup(x) == nil {
				t.Errorf("query %s plan uses unselected family", workload.Label(qr.Statement.Statement))
			}
		}
	}
	// Algorithm 1 ran: candidates exist for support queries.
	if rec.Stats.Candidates < rec.Schema.Len() {
		t.Error("stats inconsistent")
	}
	_ = enumerator.RangeSelectivity
}
