// Package search is the schema optimizer (paper §V, §VI-D): it
// enumerates candidates, generates plan spaces, formulates column
// family selection as a binary integer program, solves it in two phases
// (minimum workload cost, then fewest column families at that cost),
// and extracts the recommended schema plus one implementation plan per
// statement.
package search

import (
	"context"
	"fmt"
	"time"

	"nose/internal/bip"
	"nose/internal/cost"
	"nose/internal/enumerator"
	"nose/internal/migrate"
	"nose/internal/obs"
	"nose/internal/par"
	"nose/internal/planner"
	"nose/internal/schema"
	"nose/internal/workload"
)

// Options configures an advisor run.
type Options struct {
	// Workers bounds the goroutines fanned across the pipeline:
	// candidate enumeration, plan-space generation, and the LP
	// relaxations inside the branch and bound solver. Zero or negative
	// means runtime.NumCPU(). The recommendation — schema, plans,
	// objective — is bit-identical for every value; workers only change
	// wall-clock time.
	Workers int
	// CostModel prices plan operations; nil means cost.Default().
	CostModel cost.Model
	// Planner tunes plan-space generation.
	Planner planner.Config
	// Enumerator toggles optional enumeration steps (ablation).
	Enumerator enumerator.Features
	// MaxSupportPlans bounds the plan space of each support query;
	// zero means DefaultMaxSupportPlans.
	MaxSupportPlans int
	// SpaceBudgetBytes, when positive, constrains the total estimated
	// size of the recommended column families (paper §III-D's optional
	// space constraint).
	SpaceBudgetBytes float64
	// BIP tunes the integer solver.
	BIP bip.Options
	// SkipMinimizeSchema disables the second solver phase that
	// minimizes the number of column families at optimal cost.
	SkipMinimizeSchema bool
	// Migration prices the column family builds AdviseSeries charges at
	// phase boundaries; the zero value means
	// migrate.DefaultCostParams(). Ignored by Advise.
	Migration migrate.CostParams
	// Ctx, when non-nil, cancels an in-flight advise: it is checked at
	// every enumeration batch, at each plan-space fan-out item, and at
	// every branch-and-bound batch boundary, so Advise and AdviseSeries
	// return Ctx.Err() promptly (errors.Is recognizes context.Canceled
	// / DeadlineExceeded) instead of finishing the solve. Cancellation
	// is clean: no partial recommendation is returned, and a shared
	// cost cache (Planner.Cache) remains valid for later runs — the
	// cache only ever holds completed estimates. Nil means
	// context.Background() (never cancelled).
	Ctx context.Context
	// Obs, when non-nil, receives pipeline metrics: deterministic
	// search.*/enum.*/bip.*/lp.* counters, wall-clock stage gauges, and
	// volatile cost-cache counters. Nil disables metrics at no cost.
	Obs *obs.Registry
	// Trace, when non-nil, records one wall-clock span per advisor
	// stage, viewable in about:tracing/Perfetto.
	Trace *obs.Tracer
}

// DefaultMaxSupportPlans bounds support-query plan spaces.
const DefaultMaxSupportPlans = 8

// Timings breaks down where an advisor run spent its time, mirroring
// the categories of paper Fig. 13.
type Timings struct {
	// Enumeration covers candidate enumeration (Algorithm 1).
	Enumeration time.Duration
	// CostCalculation covers plan-space generation and cost
	// estimation.
	CostCalculation time.Duration
	// BIPConstruction covers formulating the integer program.
	BIPConstruction time.Duration
	// BIPSolving covers the integer solves (both phases).
	BIPSolving time.Duration
	// Other covers extraction and bookkeeping.
	Other time.Duration
	// Total is the end-to-end advisor time.
	Total time.Duration
}

// Stats reports the size of the optimization problem.
type Stats struct {
	// Candidates is the number of enumerated column families.
	Candidates int
	// PlanVariables is the number of plan-choice binary variables.
	PlanVariables int
	// Constraints is the number of BIP rows.
	Constraints int
	// Nodes is the number of branch and bound nodes explored.
	Nodes int
}

// QueryRecommendation pairs a workload query with its chosen plan.
type QueryRecommendation struct {
	// Statement is the workload entry.
	Statement *workload.WeightedStatement
	// Plan is the recommended implementation plan.
	Plan *planner.Plan
	// Alternatives are every plan from the query's plan space that is
	// executable against the recommended schema (all its column
	// families are installed), cheapest first and including Plan. The
	// harness uses them for plan-level failover when a column family is
	// down: NoSE's index redundancy means a query often has several
	// ways to be answered, and keeping the ranked survivors is what
	// lets execution degrade gracefully instead of failing.
	Alternatives []*planner.Plan
}

// UpdateRecommendation describes how one write statement maintains one
// recommended column family.
type UpdateRecommendation struct {
	// Statement is the workload entry.
	Statement *workload.WeightedStatement
	// Plan carries the write-side costs for the maintained family.
	Plan *planner.UpdatePlan
	// SupportPlans are the chosen plans for the update's support
	// queries.
	SupportPlans []*planner.Plan
}

// Recommendation is the advisor's output: the schema, one plan per
// query, the update maintenance plans, and run statistics.
type Recommendation struct {
	// Schema holds the recommended column families.
	Schema *schema.Schema
	// Queries holds one entry per workload query, in workload order.
	Queries []*QueryRecommendation
	// Updates holds one entry per (write statement, maintained family)
	// pair.
	Updates []*UpdateRecommendation
	// Cost is the optimal weighted workload cost under the cost model.
	Cost float64
	// Timings breaks down the advisor runtime.
	Timings Timings
	// Stats reports problem sizes.
	Stats Stats
}

// withDefaults resolves zero-valued options: the default cost model,
// support-plan bound, worker count (spread to the BIP solver), and a
// fresh per-run cost cache. The cache memo is shared by every planner
// invocation of one run and is scoped to this (schema, model, config)
// combination, so a fresh run gets a fresh cache.
func (opt Options) withDefaults() Options {
	if opt.CostModel == nil {
		opt.CostModel = cost.Default()
	}
	if opt.MaxSupportPlans <= 0 {
		opt.MaxSupportPlans = DefaultMaxSupportPlans
	}
	opt.Workers = par.Workers(opt.Workers)
	opt.BIP.Workers = opt.Workers
	opt.BIP.Obs = opt.Obs
	if opt.Ctx == nil {
		opt.Ctx = context.Background()
	}
	opt.BIP.Ctx = opt.Ctx
	if opt.Planner.Cache == nil {
		opt.Planner.Cache = cost.NewCache()
	}
	return opt
}

// Advise runs the full pipeline on a workload and returns the
// recommendation.
func Advise(w *workload.Workload, opt Options) (*Recommendation, error) {
	opt = opt.withDefaults()
	start := time.Now()
	rec := &Recommendation{}
	root := opt.Trace.Begin("advise", "advisor")
	defer root.End()
	cacheBefore := opt.Planner.Cache.Stats()
	defer publishRun(opt, rec, cacheBefore)

	// Candidate enumeration (Algorithm 1).
	t := time.Now()
	sp := opt.Trace.Begin("enumerate", "advisor")
	enumRes, err := enumerator.EnumerateWorkloadCtx(opt.Ctx, w, opt.Enumerator, opt.Workers, opt.Obs)
	if err != nil {
		return nil, err
	}
	rec.Timings.Enumeration = time.Since(t)
	rec.Stats.Candidates = enumRes.Pool.Len()
	sp.SetArg("candidates", rec.Stats.Candidates).End()
	opt.Obs.Counter("search.candidates").Add(int64(rec.Stats.Candidates))

	// Plan-space generation and cost estimation.
	t = time.Now()
	sp = opt.Trace.Begin("plan-spaces", "advisor")
	pl := planner.New(enumRes.Pool, opt.CostModel, opt.Planner)
	b, err := newBuilder(w, pl, enumRes, opt)
	if err != nil {
		return nil, err
	}
	rec.Timings.CostCalculation = time.Since(t)
	sp.End()

	// Phase 1: minimize weighted workload cost.
	t = time.Now()
	sp = opt.Trace.Begin("formulate", "advisor")
	prog1, refs1 := b.formulate(nil)
	rec.Timings.BIPConstruction = time.Since(t)
	rec.Stats.PlanVariables = len(refs1.planCols)
	rec.Stats.Constraints = prog1.NumRows()
	sp.SetArg("plan_variables", rec.Stats.PlanVariables).
		SetArg("constraints", rec.Stats.Constraints).End()
	opt.Obs.Counter("search.plan_variables").Add(int64(rec.Stats.PlanVariables))
	opt.Obs.Counter("search.constraints").Add(int64(rec.Stats.Constraints))

	phase1Opts := opt.BIP
	phase1Opts.Incumbent = b.greedyIncumbent(prog1, refs1)
	t = time.Now()
	sp = opt.Trace.Begin("solve phase 1", "advisor")
	res1, err := prog1.Solve(phase1Opts)
	rec.Timings.BIPSolving = time.Since(t)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("search: phase 1 solve: %w", err)
	}
	sp.SetArg("nodes", res1.Nodes).End()
	if !res1.HasSolution {
		return nil, fmt.Errorf("search: phase 1 %v: no feasible schema", res1.Status)
	}
	rec.Stats.Nodes = res1.Nodes
	rec.Cost = res1.Objective
	chosen := res1

	// Phase 2: among minimum-cost schemas, prefer the fewest column
	// families (paper §V).
	if !opt.SkipMinimizeSchema {
		t = time.Now()
		sp = opt.Trace.Begin("formulate phase 2", "advisor")
		pin := res1.Objective
		prog2, refs2 := b.formulate(&pin)
		rec.Timings.BIPConstruction += time.Since(t)
		sp.End()

		phase2Opts := opt.BIP
		phase2Opts.Incumbent = res1.X
		t = time.Now()
		sp = opt.Trace.Begin("solve phase 2", "advisor")
		res2, err := prog2.Solve(phase2Opts)
		rec.Timings.BIPSolving += time.Since(t)
		sp.End()
		if err == nil && res2.HasSolution {
			chosen = res2
			refs1 = refs2
			rec.Stats.Nodes += res2.Nodes
		}
	}

	opt.Obs.Counter("search.plans_pruned_dominated").Add(int64(b.prunedPlans))
	opt.Obs.Counter("search.cuts").Add(int64(b.cuts))

	// Extraction.
	t = time.Now()
	sp = opt.Trace.Begin("extract", "advisor")
	if err := b.extract(chosen, refs1, rec); err != nil {
		sp.End()
		return nil, err
	}
	rec.Timings.Other = time.Since(t)
	rec.Timings.Total = time.Since(start)
	sp.End()
	return rec, nil
}

// publishRun records the run-level metrics that are only known at the
// end: solver node totals, wall-clock stage gauges, and the cost-cache
// deltas. Cache counters are volatile — racing planner workers can both
// miss the same key — and deltas (not absolutes) are recorded so a
// caller-supplied cache reused across runs is not double counted.
func publishRun(opt Options, rec *Recommendation, cacheBefore cost.CacheStats) {
	if opt.Obs == nil {
		return
	}
	opt.Obs.Counter("search.nodes").Add(int64(rec.Stats.Nodes))
	opt.Obs.Counter("search.advise_runs").Inc()

	g := func(name string, d time.Duration) {
		opt.Obs.Gauge(name).Add(float64(d.Nanoseconds()) / 1e6)
	}
	g("search.wall_ms.enumeration", rec.Timings.Enumeration)
	g("search.wall_ms.cost_calculation", rec.Timings.CostCalculation)
	g("search.wall_ms.bip_construction", rec.Timings.BIPConstruction)
	g("search.wall_ms.bip_solving", rec.Timings.BIPSolving)
	g("search.wall_ms.total", rec.Timings.Total)

	after := opt.Planner.Cache.Stats()
	opt.Obs.VolatileCounter("cost.cache.hits").Add(int64(after.Hits - cacheBefore.Hits))
	opt.Obs.VolatileCounter("cost.cache.misses").Add(int64(after.Misses - cacheBefore.Misses))
	opt.Obs.VolatileCounter("cost.cache.contention").Add(int64(after.Contention - cacheBefore.Contention))
	opt.Obs.VolatileCounter("cost.cache.entries").Add(int64(after.Entries - cacheBefore.Entries))
}
