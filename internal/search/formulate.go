package search

import (
	"math"
	"sort"

	"nose/internal/bip"
	"nose/internal/enumerator"
	"nose/internal/lp"
	"nose/internal/par"
	"nose/internal/planner"
	"nose/internal/schema"
	"nose/internal/workload"
)

// queryBlock is one workload query with its plan space.
type queryBlock struct {
	ws    *workload.WeightedStatement
	space *planner.PlanSpace
}

// supportGroup is one distinct support query of an update, shared by
// every modified column family that needs it: the query executes once
// per update execution, so its plan variables are gated on a single
// indicator that any of those families is selected.
type supportGroup struct {
	space   *planner.PlanSpace
	indexes []*schema.Index // modified families requiring this query
}

// updateBlock is one write statement with its per-family maintenance
// plans and shared support groups.
type updateBlock struct {
	ws     *workload.WeightedStatement
	u      workload.WriteStatement
	plans  map[string]*planner.UpdatePlan // by index ID
	order  []*schema.Index                // modified families, pool order
	groups []*supportGroup
}

// builder holds everything needed to formulate the BIP (possibly
// twice: once per solver phase).
type builder struct {
	w       *workload.Workload
	pl      *planner.Planner
	pool    []*schema.Index
	queries []*queryBlock
	updates []*updateBlock
	opt     Options

	// maint is each index's weighted maintenance cost. Indexes with
	// zero maintenance and no storage constraint are "free": including
	// them can never hurt the objective, so the formulation fixes
	// their presence and omits their variables and linking rows. This
	// elision is exact and shrinks the program dramatically for
	// read-mostly workloads.
	maint map[string]float64

	// paidAll disables the free-family elision: every pool index gets a
	// presence variable. The multi-interval series formulation needs
	// this because presence is never free there — a family present in
	// one phase but not the previous one is charged its migration build
	// cost, so the solver must decide presence explicitly even for
	// maintenance-free families.
	paidAll bool

	// prunedPlans counts plans removed by dominance pruning and cuts
	// counts cutting-plane rows added during formulation; both feed the
	// obs registry.
	prunedPlans int
	cuts        int
}

// colRefs maps BIP columns back to schema objects and plans.
type colRefs struct {
	indexCol map[string]int // paid index ID -> column
	// planCols records (owner, plan) per plan-choice column.
	planCols map[int]planRef
	// planCol is the reverse lookup: plan pointer -> column.
	planCol map[*planner.Plan]int
	// zCol is each support group's indicator column.
	zCol map[*supportGroup]int
}

type planRef struct {
	query *queryBlock   // non-nil for workload query plans
	group *supportGroup // non-nil for support query plans
	ub    *updateBlock  // owner of group
	plan  *planner.Plan
}

// newBuilder plans every query and update in the workload. Plan-space
// generation fans across a bounded worker pool: queries fill
// index-addressed slots and update blocks are built independently, with
// their maintenance-cost contributions merged in workload order so
// floating-point accumulation is bit-identical for every worker count.
func newBuilder(w *workload.Workload, pl *planner.Planner, enumRes *enumerator.Result, opt Options) (*builder, error) {
	b := &builder{w: w, pl: pl, pool: pl.Pool().Indexes(), opt: opt, maint: map[string]float64{}}
	workers := par.Workers(opt.Workers)

	qws := w.Queries()
	qblocks := make([]*queryBlock, len(qws))
	qerrs := make([]error, len(qws))
	par.Do(len(qws), workers, func(i int) {
		// The plan-space fan-out is the advisor's costing hot loop;
		// checking the context per item keeps a cancelled solve from
		// planning the rest of the workload.
		if err := opt.Ctx.Err(); err != nil {
			qerrs[i] = err
			return
		}
		q := qws[i].Statement.(*workload.Query)
		space, err := pl.PlanQuery(q)
		if err != nil {
			qerrs[i] = err
			return
		}
		qblocks[i] = &queryBlock{ws: qws[i], space: space}
	})
	for i := range qws {
		if qerrs[i] != nil {
			return nil, qerrs[i]
		}
		b.queries = append(b.queries, qblocks[i])
	}

	uws := w.Updates()
	ublocks := make([]*updateBlock, len(uws))
	umaints := make([]map[string]float64, len(uws))
	uerrs := make([]error, len(uws))
	par.Do(len(uws), workers, func(i int) {
		if err := opt.Ctx.Err(); err != nil {
			uerrs[i] = err
			return
		}
		ublocks[i], umaints[i], uerrs[i] = b.buildUpdateBlock(uws[i], enumRes)
	})
	for i := range uws {
		if uerrs[i] != nil {
			return nil, uerrs[i]
		}
		// Per-key sums accumulate across updates in workload order; keys
		// never interact, so map iteration order here is irrelevant.
		for id, m := range umaints[i] {
			b.maint[id] += m
		}
		if len(ublocks[i].order) > 0 {
			b.updates = append(b.updates, ublocks[i])
		}
	}
	// Dominated plans first: candidates used only by dominated plans
	// then fall to the unselectable prune below.
	b.pruneDominatedPlans()
	b.pruneUnselectable()
	return b, nil
}

// pruneDominatedPlans drops every plan whose index set is a superset of
// an earlier (hence cheaper-or-equal: plan spaces are sorted by cost
// with a deterministic tiebreak) plan's in the same space. The removal
// is exact for both solver phases and for plan-level failover: wherever
// the dominated plan is feasible or executable, the dominating plan is
// too, at no greater cost, and it is ranked first. Shrinking the plan
// spaces before formulation removes their columns and linking rows from
// the BIP entirely.
func (b *builder) pruneDominatedPlans() {
	pruneSpace := func(space *planner.PlanSpace) {
		kept := make([]*planner.Plan, 0, len(space.Plans))
		keptSets := make([]map[string]bool, 0, len(space.Plans))
		for _, pl := range space.Plans {
			set := map[string]bool{}
			for _, x := range pl.Indexes() {
				set[x.ID()] = true
			}
			dominated := false
			for _, ks := range keptSets {
				if len(ks) > len(set) {
					continue
				}
				subset := true
				for id := range ks {
					if !set[id] {
						subset = false
						break
					}
				}
				if subset {
					dominated = true
					break
				}
			}
			if dominated {
				b.prunedPlans++
				continue
			}
			kept = append(kept, pl)
			keptSets = append(keptSets, set)
		}
		space.Plans = kept
	}
	for _, qb := range b.queries {
		pruneSpace(qb.space)
	}
	for _, ub := range b.updates {
		for _, g := range ub.groups {
			pruneSpace(g.space)
		}
	}
}

// buildUpdateBlock plans one write statement's maintenance against every
// modified pool candidate and groups its support queries. It touches no
// builder state shared with other goroutines: the maintenance-cost
// contributions come back in a private map the caller merges in workload
// order.
func (b *builder) buildUpdateBlock(ws *workload.WeightedStatement, enumRes *enumerator.Result) (*updateBlock, map[string]float64, error) {
	u := ws.Statement.(workload.WriteStatement)
	ub := &updateBlock{ws: ws, u: u, plans: map[string]*planner.UpdatePlan{}}
	maint := map[string]float64{}
	// Support queries of one update that share a path and
	// predicates differ only in which attributes they select (each
	// maintained family needs a different subset). The store
	// charges reads per row, not per cell, so the union query
	// costs the same and is planned once for the whole group.
	type pendingGroup struct {
		merged    *workload.Query
		originals []*workload.Query
		indexes   []*schema.Index
	}
	groupByShape := map[string]*pendingGroup{}
	var groupOrder []string
	for _, x := range b.pool {
		sqs, modified := enumRes.Support[u][x.ID()]
		if !modified {
			if !enumerator.Modifies(u, x) {
				continue
			}
			sqs = enumerator.SupportQueries(u, x)
		}
		up, err := b.pl.PlanUpdate(u, x, nil)
		if err != nil {
			return nil, nil, err
		}
		ub.plans[x.ID()] = up
		ub.order = append(ub.order, x)
		maint[x.ID()] += b.w.Weight(ws) * up.WriteCost
		for _, sq := range sqs {
			shape := shapeSignature(sq)
			g := groupByShape[shape]
			if g == nil {
				g = &pendingGroup{merged: cloneQuery(sq)}
				groupByShape[shape] = g
				groupOrder = append(groupOrder, shape)
			} else {
				mergeSelects(g.merged, sq)
			}
			g.originals = append(g.originals, sq)
			g.indexes = append(g.indexes, x)
		}
	}
	for _, shape := range groupOrder {
		pg := groupByShape[shape]
		groups, err := b.planSupportGroup(pg.merged, pg.originals, pg.indexes)
		if err != nil {
			return nil, nil, err
		}
		ub.groups = append(ub.groups, groups...)
	}
	return ub, maint, nil
}

// pruneUnselectable removes candidates no plan in any plan space ever
// reads: they can never be selected (presence only costs), so they need
// no variables, no maintenance bookkeeping, and no support-group rows.
// This typically eliminates the large majority of the enumerated pool
// from the integer program.
func (b *builder) pruneUnselectable() {
	used := map[string]bool{}
	mark := func(space *planner.PlanSpace) {
		for _, pl := range space.Plans {
			for _, x := range pl.Indexes() {
				used[x.ID()] = true
			}
		}
	}
	for _, qb := range b.queries {
		mark(qb.space)
	}
	for _, ub := range b.updates {
		for _, g := range ub.groups {
			mark(g.space)
		}
	}
	for _, ub := range b.updates {
		var order []*schema.Index
		for _, x := range ub.order {
			if used[x.ID()] {
				order = append(order, x)
			} else {
				delete(ub.plans, x.ID())
			}
		}
		ub.order = order
		var groups []*supportGroup
		for _, g := range ub.groups {
			var kept []*schema.Index
			for _, x := range g.indexes {
				if used[x.ID()] {
					kept = append(kept, x)
				}
			}
			if len(kept) > 0 {
				g.indexes = kept
				groups = append(groups, g)
			}
		}
		ub.groups = groups
	}
	for id := range b.maint {
		if !used[id] {
			delete(b.maint, id)
		}
	}
	var pool []*schema.Index
	for _, x := range b.pool {
		if used[x.ID()] {
			pool = append(pool, x)
		}
	}
	b.pool = pool
}

// planSupportGroup plans the merged support query; if the pool cannot
// answer the union (its attribute set may exceed any one family's), it
// falls back to planning each original query as its own group.
func (b *builder) planSupportGroup(merged *workload.Query, originals []*workload.Query, indexes []*schema.Index) ([]*supportGroup, error) {
	if space, err := b.pl.PlanQuery(merged); err == nil {
		b.capSupport(space)
		return []*supportGroup{{space: space, indexes: indexes}}, nil
	}
	var out []*supportGroup
	bySig := map[string]*supportGroup{}
	for i, sq := range originals {
		sig := enumerator.QuerySignature(sq)
		g := bySig[sig]
		if g == nil {
			space, err := b.pl.PlanQuery(sq)
			if err != nil {
				return nil, err
			}
			b.capSupport(space)
			g = &supportGroup{space: space}
			bySig[sig] = g
			out = append(out, g)
		}
		g.indexes = append(g.indexes, indexes[i])
	}
	return out, nil
}

func (b *builder) capSupport(space *planner.PlanSpace) {
	if len(space.Plans) > b.opt.MaxSupportPlans {
		space.Plans = space.Plans[:b.opt.MaxSupportPlans]
	}
}

// shapeSignature canonicalizes a query ignoring its SELECT list.
func shapeSignature(q *workload.Query) string {
	sig := q.Path.String() + "/"
	for _, p := range q.Where {
		sig += p.Ref.Attr.QualifiedName() + p.Op.String() + ";"
	}
	for _, o := range q.Order {
		sig += "|" + o.Attr.QualifiedName()
	}
	return sig
}

func cloneQuery(q *workload.Query) *workload.Query {
	cp := *q
	cp.Select = append([]workload.AttrRef(nil), q.Select...)
	return &cp
}

// mergeSelects unions src's selected attributes into dst.
func mergeSelects(dst, src *workload.Query) {
	have := map[workload.AttrRef]bool{}
	for _, s := range dst.Select {
		have[s] = true
	}
	for _, s := range src.Select {
		if !have[s] {
			have[s] = true
			dst.Select = append(dst.Select, s)
		}
	}
}

// paid reports whether an index needs a presence variable: it carries
// maintenance cost, a storage budget prices every index, or the series
// formulation demands explicit presence for everything.
func (b *builder) paid(id string) bool {
	return b.paidAll || b.maint[id] > 0 || b.opt.SpaceBudgetBytes > 0
}

// formulate builds the BIP. With pinCost nil it minimizes weighted
// workload cost; with pinCost set it constrains the cost to that value
// and minimizes the number of paid column families (paper §V's second
// phase; free families enter the schema only when a chosen plan uses
// them, so they need no minimization).
func (b *builder) formulate(pinCost *float64) (*bip.Program, *colRefs) {
	prog := bip.New()
	refs := &colRefs{
		indexCol: map[string]int{},
		planCols: map[int]planRef{},
		planCol:  map[*planner.Plan]int{},
		zCol:     map[*supportGroup]int{},
	}

	costRow := -1
	if pinCost != nil {
		slack := math.Max(1e-6, 1e-9*math.Abs(*pinCost))
		costRow = prog.AddRow(math.Inf(-1), *pinCost+slack)
	}
	objEntry := func(entries []lp.Entry, c float64) ([]lp.Entry, float64) {
		// In phase 2, objective coefficients move onto the pinned cost
		// row and the true objective becomes the column family count.
		if costRow >= 0 && c != 0 {
			entries = append(entries, lp.Entry{Row: costRow, Coef: c})
			return entries, 0
		}
		return entries, c
	}

	// Presence variables for paid indexes.
	storageRow := -1
	if b.opt.SpaceBudgetBytes > 0 {
		storageRow = prog.AddRow(math.Inf(-1), b.opt.SpaceBudgetBytes/1e6)
	}
	for _, x := range b.pool {
		if !b.paid(x.ID()) {
			continue
		}
		var entries []lp.Entry
		if storageRow >= 0 {
			entries = append(entries, lp.Entry{Row: storageRow, Coef: x.SizeBytes() / 1e6})
		}
		entries, obj := objEntry(entries, b.maint[x.ID()])
		if costRow >= 0 {
			obj = 1 // phase 2 minimizes the number of paid families
		}
		refs.indexCol[x.ID()] = prog.AddBinary(obj, entries...)
	}
	if storageRow >= 0 {
		var items []budgetCutItem
		for _, x := range b.pool {
			if col, ok := refs.indexCol[x.ID()]; ok {
				items = append(items, budgetCutItem{col: col, sizeMB: x.SizeBytes() / 1e6})
			}
		}
		b.cuts += addBudgetCuts(prog, items, b.opt.SpaceBudgetBytes/1e6)
	}

	// Query plan choice variables with linking constraints to paid
	// indexes, aggregated per (query, index).
	addPlanVars := func(space *planner.PlanSpace, chooseRow int, weight float64, mk func(*planner.Plan) planRef) {
		linkRow := map[string]int{}
		var linkOrder []string
		for _, plan := range space.Plans {
			entries := []lp.Entry{{Row: chooseRow, Coef: 1}}
			for _, x := range plan.Indexes() {
				if !b.paid(x.ID()) {
					continue
				}
				r, ok := linkRow[x.ID()]
				if !ok {
					r = prog.AddRow(math.Inf(-1), 0)
					linkRow[x.ID()] = r
					linkOrder = append(linkOrder, x.ID())
				}
				entries = append(entries, lp.Entry{Row: r, Coef: 1})
			}
			entries, obj := objEntry(entries, weight*plan.Cost)
			col := prog.AddBinary(obj, entries...)
			refs.planCols[col] = mk(plan)
			refs.planCol[plan] = col
		}
		sort.Strings(linkOrder)
		for _, id := range linkOrder {
			prog.AddColEntry(refs.indexCol[id], linkRow[id], -1)
		}
	}

	for _, qb := range b.queries {
		chooseRow := prog.AddRow(1, 1)
		qb := qb
		addPlanVars(qb.space, chooseRow, b.w.Weight(qb.ws), func(pl *planner.Plan) planRef {
			return planRef{query: qb, plan: pl}
		})
	}

	// Support query groups: an indicator z forced on by any modified
	// family, an equality gate choosing exactly z plans, and linking of
	// support plans to the paid families they read.
	for _, ub := range b.updates {
		for _, g := range ub.groups {
			zCol := prog.AddBinary(0)
			refs.zCol[g] = zCol
			gateRow := prog.AddRow(0, 0)
			prog.AddColEntry(zCol, gateRow, -1)
			// Sum of the group's modified families minus |group|·z <= 0:
			// any selected family forces z (and hence a support plan).
			// Aggregating keeps one row per group; integrality of z
			// makes the aggregate exact. Modified families always carry
			// maintenance cost, hence are always paid.
			force := prog.AddRow(math.Inf(-1), 0)
			prog.AddColEntry(zCol, force, -float64(len(g.indexes)))
			for _, x := range g.indexes {
				prog.AddColEntry(refs.indexCol[x.ID()], force, 1)
			}
			ub, g := ub, g
			addPlanVars(g.space, gateRow, b.w.Weight(ub.ws), func(pl *planner.Plan) planRef {
				return planRef{group: g, ub: ub, plan: pl}
			})
		}
	}

	return prog, refs
}

// budgetCutItem pairs a presence column with its storage footprint.
type budgetCutItem struct {
	col    int
	sizeMB float64
}

// addBudgetCuts tightens a storage-constrained formulation with simple
// families of valid inequalities over the presence variables — cuts the
// LP relaxation cannot see but every integer solution must satisfy:
//
//   - oversized: families alone exceeding the budget sum to ≤ 0 (the
//     relaxation would otherwise select them fractionally);
//   - clique: families each larger than half the budget are pairwise
//     exclusive, so at most one may be present;
//   - cover: the smallest big-first prefix whose total exceeds the
//     budget cannot be selected in full (Σ y ≤ k−1). The prefix is a
//     minimal cover by construction: dropping its smallest member
//     already fits the budget.
//
// Tightening the relaxation raises node bounds, so branch and bound
// prunes earlier. Item order is deterministic (size descending, caller
// order on ties); it returns the number of cut rows added.
func addBudgetCuts(prog *bip.Program, items []budgetCutItem, budgetMB float64) int {
	sorted := append([]budgetCutItem(nil), items...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].sizeMB > sorted[j].sizeMB })
	cuts := 0

	var oversized, big []budgetCutItem
	for _, it := range sorted {
		switch {
		case it.sizeMB > budgetMB:
			oversized = append(oversized, it)
		case it.sizeMB > budgetMB/2:
			big = append(big, it)
		}
	}
	if len(oversized) > 0 {
		row := prog.AddRow(math.Inf(-1), 0)
		for _, it := range oversized {
			prog.AddColEntry(it.col, row, 1)
		}
		cuts++
	}
	if len(big) >= 2 {
		row := prog.AddRow(math.Inf(-1), 1)
		for _, it := range big {
			prog.AddColEntry(it.col, row, 1)
		}
		cuts++
	}

	// Greedy minimal cover over budget-feasible items.
	sum := 0.0
	var cover []budgetCutItem
	for _, it := range sorted[len(oversized):] {
		cover = append(cover, it)
		sum += it.sizeMB
		if sum > budgetMB {
			break
		}
	}
	if sum > budgetMB && len(cover) >= 2 {
		// A two-element cover of half-budget items is already the
		// clique cut (which is at least as strong).
		twoBig := len(cover) == 2 && cover[1].sizeMB > budgetMB/2 && len(big) >= 2
		if !twoBig {
			row := prog.AddRow(math.Inf(-1), float64(len(cover)-1))
			for _, it := range cover {
				prog.AddColEntry(it.col, row, 1)
			}
			cuts++
		}
	}
	return cuts
}

// greedyIncumbent builds a feasible warm-start assignment: every query
// takes its cheapest plan, the paid families those plans read are
// selected, and every group forced by a selected family takes its
// cheapest support plan — iterated to a fixpoint since support plans
// may read further paid families.
func (b *builder) greedyIncumbent(prog *bip.Program, refs *colRefs) []float64 {
	x := make([]float64, prog.NumCols())
	selected := map[string]bool{}
	markPaid := func(pl *planner.Plan) {
		for _, ix := range pl.Indexes() {
			if b.paid(ix.ID()) {
				selected[ix.ID()] = true
			}
		}
	}
	for _, qb := range b.queries {
		pl := qb.space.Plans[0]
		x[refs.planCol[pl]] = 1
		markPaid(pl)
	}
	chosen := map[*supportGroup]bool{}
	for changed := true; changed; {
		changed = false
		for _, ub := range b.updates {
			for _, g := range ub.groups {
				if chosen[g] {
					continue
				}
				forced := false
				for _, ix := range g.indexes {
					if selected[ix.ID()] {
						forced = true
						break
					}
				}
				if !forced {
					continue
				}
				chosen[g] = true
				changed = true
				pl := g.space.Plans[0]
				x[refs.planCol[pl]] = 1
				x[refs.zCol[g]] = 1
				markPaid(pl)
			}
		}
	}
	for id := range selected {
		x[refs.indexCol[id]] = 1
	}
	return x
}
