package search_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"nose/internal/cost"
	"nose/internal/hotel"
	"nose/internal/nosedsl"
	"nose/internal/search"
	"nose/internal/workload"
)

// slowDSL builds a chain-model workload whose advise takes minutes:
// long query paths make candidate enumeration exponential and updates
// plus a tight space budget make the integer program hard. Cancel tests
// rely on it never finishing within a test run.
func slowDSL() string {
	const entities, queries = 10, 24
	var b strings.Builder
	for i := 0; i < entities; i++ {
		fmt.Fprintf(&b, "entity E%d E%dID 1000\n", i, i)
		fmt.Fprintf(&b, "attr E%d.A%d string cardinality 100\n", i, i)
		fmt.Fprintf(&b, "attr E%d.B%d integer cardinality 50\n", i, i)
	}
	for i := 0; i+1 < entities; i++ {
		fmt.Fprintf(&b, "rel E%d.Kids%d E%d.Parent%d one-to-many\n", i, i, i+1, i)
	}
	for q := 0; q < queries; q++ {
		start := q % (entities - 4)
		path := fmt.Sprintf("E%d", start+4)
		nav := fmt.Sprintf("E%d.Parent%d.Parent%d.Parent%d.Parent%d", start+4, start+3, start+2, start+1, start)
		fmt.Fprintf(&b, "stmt 0.1 Q%d: SELECT %s.A%d FROM %s WHERE %s.A%d = ?p%d AND %s.B%d > ?r%d\n",
			q, path, start+4, path, nav, start, q, path, start+4, q)
	}
	for i := 0; i < entities; i++ {
		fmt.Fprintf(&b, "stmt 0.2 U%d: UPDATE E%d SET A%d = ? WHERE E%d.E%dID = ?id%d\n", i, i, i, i, i, i)
	}
	return b.String()
}

func parseSlow(t *testing.T) *workload.Workload {
	t.Helper()
	_, w, err := nosedsl.Parse(slowDSL())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAdviseCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := hotel.Graph()
	w := workload.New(g)
	w.Add(workload.MustParseQuery(g, hotel.ExampleQuery), 1)
	if _, err := search.Advise(w, search.Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := search.AdviseSeries(w, search.Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("series err = %v, want context.Canceled", err)
	}
}

// TestAdviseCancelPrompt proves a cancelled solve returns quickly: the
// workload takes minutes uncancelled, the context fires at 100ms, and
// the advisor must be back within seconds no matter which stage —
// enumeration, planning, or branch and bound — the cancel lands in.
func TestAdviseCancelPrompt(t *testing.T) {
	w := parseSlow(t)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()

	type outcome struct {
		rec *search.Recommendation
		err error
	}
	done := make(chan outcome, 1)
	start := time.Now()
	go func() {
		rec, err := search.Advise(w, search.Options{
			Workers:          2,
			SpaceBudgetBytes: 2e6,
			Ctx:              ctx,
		})
		done <- outcome{rec, err}
	}()
	select {
	case out := <-done:
		if !errors.Is(out.err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", out.err)
		}
		if out.rec != nil {
			t.Fatal("cancelled advise returned a partial recommendation")
		}
		if d := time.Since(start); d > 30*time.Second {
			t.Fatalf("cancelled advise took %v to return", d)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("advise did not return after cancellation")
	}
}

// TestCancelLeavesCacheUsable pins the service contract: a cost cache
// shared with a cancelled run stays valid, and a later run over the same
// cache produces the exact recommendation of a cache-free run.
func TestCancelLeavesCacheUsable(t *testing.T) {
	g := hotel.Graph()
	w := workload.New(g)
	for _, src := range []string{hotel.ExampleQuery, hotel.PrefixQuery, hotel.POIQuery} {
		w.Add(workload.MustParseQuery(g, src), 1)
	}
	for _, src := range hotel.UpdateStatements {
		st, err := workload.Parse(g, src)
		if err != nil {
			t.Fatal(err)
		}
		w.Add(st, 1)
	}

	pristine, err := search.Advise(w, search.Options{})
	if err != nil {
		t.Fatal(err)
	}

	cache := cost.NewCache()
	opt := func(ctx context.Context) search.Options {
		o := search.Options{Ctx: ctx}
		o.Planner.Cache = cache
		return o
	}

	// Cancel immediately: the run dies somewhere in the pipeline having
	// possibly half-filled the cache.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := search.Advise(w, opt(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// And again mid-flight, for a non-empty partial fill.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	if _, err := search.Advise(w, opt(ctx2)); err == nil {
		t.Log("1ms advise finished before the deadline; cache fully warm")
	}

	rec, err := search.Advise(w, opt(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Cost != pristine.Cost {
		t.Fatalf("cost after cancelled runs = %v, pristine = %v", rec.Cost, pristine.Cost)
	}
	if rec.Schema.String() != pristine.Schema.String() {
		t.Fatalf("schema after cancelled runs differs:\n%s\nvs pristine:\n%s", rec.Schema, pristine.Schema)
	}
}
