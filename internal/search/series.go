package search

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"nose/internal/bip"
	"nose/internal/cost"
	"nose/internal/enumerator"
	"nose/internal/lp"
	"nose/internal/migrate"
	"nose/internal/planner"
	"nose/internal/schema"
	"nose/internal/workload"
)

// PhaseRecommendation is one interval of a schema series: the phase,
// its full single-workload recommendation, and the migration entering
// the phase.
type PhaseRecommendation struct {
	// Phase is the workload interval; nil when the input workload had
	// no phases.
	Phase *workload.Phase
	// Rec is the phase's schema and plans. Rec.Cost is the phase's
	// weighted workload cost (unscaled by duration), comparable to what
	// Advise on the phase's workload alone would report.
	Rec *Recommendation
	// Build and Drop are the column families the migration entering
	// this phase must build and may drop, relative to the previous
	// phase's schema. The first phase builds its entire schema.
	Build, Drop []*schema.Index
	// MigrationCost is the estimated charge for Build under the
	// migration cost parameters. Drops are free.
	MigrationCost float64
}

// SeriesRecommendation is the advisor's output for a time-dependent
// workload: one recommendation per phase plus the migration schedule
// linking them.
type SeriesRecommendation struct {
	// Phases holds one entry per workload phase, in timeline order.
	Phases []*PhaseRecommendation
	// WorkloadCost is the duration-weighted workload cost across the
	// timeline: sum over phases of share·Rec.Cost.
	WorkloadCost float64
	// MigrationCost totals the estimated build charges, including the
	// first phase's initial installation — pre-building every family up
	// front is priced the same as building it later, so the solver has
	// no free lunch.
	MigrationCost float64
	// TotalCost is WorkloadCost + MigrationCost: the solver's joint
	// objective.
	TotalCost float64
	// Timings aggregates stage times across the whole series run.
	Timings Timings
	// Stats aggregates problem sizes across all phases.
	Stats Stats
}

// AdviseSeries solves the multi-interval schema problem for a workload
// with phases (paper extension: Wakuta & Mior et al., "NoSQL Schema
// Design for Time-Dependent Workloads"). Candidates are enumerated once
// over the union of all phases; each phase then gets its own plan
// spaces and its own presence and plan-choice variables in one joint
// BIP, with adjacent phases linked by migration variables
//
//	y[t][i] − y[t−1][i] − m[t][i] ≤ 0
//
// whose objective coefficient is the estimated cost of building column
// family i from the base data (migrate.BuildCost, derived from the
// schema size statistics). Minimizing workload cost plus migration
// charges decides both the per-phase schemas and when changing them
// pays for itself.
//
// A workload with zero or one phase delegates to Advise — the series
// machinery reduces exactly to the static problem — so the result is
// bit-identical to the single-schema advisor and no migration is
// charged (there is no series decision for it to influence). Like
// Advise, the result is bit-identical for every worker count.
func AdviseSeries(w *workload.Workload, opt Options) (*SeriesRecommendation, error) {
	if err := w.ValidatePhases(); err != nil {
		return nil, err
	}
	if len(w.Phases) <= 1 {
		return adviseSingleSeries(w, opt)
	}
	opt = opt.withDefaults()
	mig := opt.Migration
	if mig == (migrate.CostParams{}) {
		mig = migrate.DefaultCostParams()
	}

	start := time.Now()
	sr := &SeriesRecommendation{}
	root := opt.Trace.Begin("advise-series", "advisor")
	defer root.End()
	cacheBefore := opt.Planner.Cache.Stats()
	defer publishSeries(opt, sr, cacheBefore)

	// Enumerate once over the union workload: every statement active in
	// any phase, at its maximum phase weight. Weights only matter for
	// which statements appear; per-phase weights are applied below.
	t0 := time.Now()
	sp := opt.Trace.Begin("enumerate", "advisor")
	union := unionWorkload(w)
	enumRes, err := enumerator.EnumerateWorkloadCtx(opt.Ctx, union, opt.Enumerator, opt.Workers, opt.Obs)
	if err != nil {
		return nil, err
	}
	sr.Timings.Enumeration = time.Since(t0)
	sr.Stats.Candidates = enumRes.Pool.Len()
	sp.SetArg("candidates", sr.Stats.Candidates).End()

	// One planner (and one cost cache) across all phases: schema.Index
	// pointers are shared, so column family identity — and naming — is
	// stable across the series.
	pl := planner.New(enumRes.Pool, opt.CostModel, opt.Planner)

	t0 = time.Now()
	sb := &seriesBuilder{w: w, opt: opt, mig: mig}
	total := w.TotalDuration()
	for i, p := range w.Phases {
		if err := opt.Ctx.Err(); err != nil {
			return nil, err
		}
		psp := opt.Trace.Begin(fmt.Sprintf("plan-spaces phase %d", i), "advisor")
		b, err := newBuilder(w.ForPhase(p), pl, enumRes, opt)
		if err != nil {
			psp.End()
			return nil, fmt.Errorf("search: phase %q: %w", p.Name, err)
		}
		b.paidAll = true
		sb.builders = append(sb.builders, b)
		sb.shares = append(sb.shares, p.EffectiveDuration()/total)
		psp.End()
	}
	sr.Timings.CostCalculation = time.Since(t0)

	t0 = time.Now()
	sp = opt.Trace.Begin("formulate series", "advisor")
	sb.formulate()
	sr.Timings.BIPConstruction = time.Since(t0)
	for _, refs := range sb.refs {
		sr.Stats.PlanVariables += len(refs.planCols)
	}
	sr.Stats.Constraints = sb.prog.NumRows()
	sp.SetArg("plan_variables", sr.Stats.PlanVariables).
		SetArg("constraints", sr.Stats.Constraints).End()

	solveOpts := opt.BIP
	solveOpts.Incumbent = sb.greedyIncumbent()
	t0 = time.Now()
	sp = opt.Trace.Begin("solve series", "advisor")
	res, err := sb.prog.Solve(solveOpts)
	sr.Timings.BIPSolving = time.Since(t0)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("search: series solve: %w", err)
	}
	sp.SetArg("nodes", res.Nodes).End()
	if !res.HasSolution {
		return nil, fmt.Errorf("search: series %v: no feasible schema series", res.Status)
	}
	sr.Stats.Nodes = res.Nodes
	var pruned, cuts int
	for _, b := range sb.builders {
		pruned += b.prunedPlans
		cuts += b.cuts
	}
	opt.Obs.Counter("search.plans_pruned_dominated").Add(int64(pruned))
	opt.Obs.Counter("search.cuts").Add(int64(cuts))

	// Extraction: the series follows the solver's presence assignment
	// literally, so the migrations reported (and later executed) are
	// exactly the ones the objective charged. There is no second
	// minimize-schema pass: with migration charges in the objective,
	// gratuitous families already cost their build.
	t0 = time.Now()
	sp = opt.Trace.Begin("extract series", "advisor")
	if err := sb.extract(res, sr); err != nil {
		sp.End()
		return nil, err
	}
	sr.Timings.Other = time.Since(t0)
	sr.Timings.Total = time.Since(start)
	sp.End()
	return sr, nil
}

// adviseSingleSeries handles the degenerate zero- or one-phase series
// by delegating to Advise, guaranteeing bit-identical output to the
// static advisor.
func adviseSingleSeries(w *workload.Workload, opt Options) (*SeriesRecommendation, error) {
	var phase *workload.Phase
	ww := w
	if len(w.Phases) == 1 {
		phase = w.Phases[0]
		ww = w.ForPhase(phase)
	}
	rec, err := Advise(ww, opt)
	if err != nil {
		return nil, err
	}
	pr := &PhaseRecommendation{Phase: phase, Rec: rec, Build: rec.Schema.Indexes()}
	return &SeriesRecommendation{
		Phases:       []*PhaseRecommendation{pr},
		WorkloadCost: rec.Cost,
		TotalCost:    rec.Cost,
		Timings:      rec.Timings,
		Stats:        rec.Stats,
	}, nil
}

// unionWorkload flattens a phased workload to the statements active in
// any phase, each at its maximum phase weight. Statement values are
// shared with the input so enumeration results key correctly against
// the per-phase workloads.
func unionWorkload(w *workload.Workload) *workload.Workload {
	u := workload.New(w.Graph)
	for _, ws := range w.Statements {
		maxW := 0.0
		for _, p := range w.Phases {
			if pw := w.PhaseWeight(ws, p); pw > maxW {
				maxW = pw
			}
		}
		u.Statements = append(u.Statements, &workload.WeightedStatement{
			Statement: ws.Statement,
			Weight:    maxW,
		})
	}
	return u
}

// seriesBuilder assembles and decodes the joint multi-interval program.
type seriesBuilder struct {
	w        *workload.Workload
	opt      Options
	mig      migrate.CostParams
	builders []*builder
	shares   []float64

	prog *bip.Program
	refs []*colRefs // per phase; indexCol is that phase's y columns

	// Per-column bookkeeping, indexed by BIP column, appended in
	// creation order so post-solve sums are accumulated
	// deterministically.
	colPhase []int     // owning phase, -1 for none
	colRaw   []float64 // unscaled in-phase workload cost contribution
	colMig   []float64 // migration build charge

	migCols []map[string]int // per phase: index ID -> migration column
}

// addBinary wraps Program.AddBinary, keeping the per-column bookkeeping
// slices aligned with the program's columns.
func (sb *seriesBuilder) addBinary(obj float64, phase int, raw, mig float64, entries ...lp.Entry) int {
	col := sb.prog.AddBinary(obj, entries...)
	sb.colPhase = append(sb.colPhase, phase)
	sb.colRaw = append(sb.colRaw, raw)
	sb.colMig = append(sb.colMig, mig)
	return col
}

// formulate builds the joint BIP: per phase, the same presence, plan
// choice and support-group structure as the static formulation (with
// every family paid and objective coefficients scaled by the phase's
// duration share), then one migration variable per (phase, candidate)
// linking adjacent phases' presence.
func (sb *seriesBuilder) formulate() {
	sb.prog = bip.New()
	for t, b := range sb.builders {
		share := sb.shares[t]
		refs := &colRefs{
			indexCol: map[string]int{},
			planCols: map[int]planRef{},
			planCol:  map[*planner.Plan]int{},
			zCol:     map[*supportGroup]int{},
		}
		sb.refs = append(sb.refs, refs)

		storageRow := -1
		if sb.opt.SpaceBudgetBytes > 0 {
			storageRow = sb.prog.AddRow(math.Inf(-1), sb.opt.SpaceBudgetBytes/1e6)
		}
		for _, x := range b.pool {
			var entries []lp.Entry
			if storageRow >= 0 {
				entries = append(entries, lp.Entry{Row: storageRow, Coef: x.SizeBytes() / 1e6})
			}
			raw := b.maint[x.ID()]
			refs.indexCol[x.ID()] = sb.addBinary(share*raw, t, raw, 0, entries...)
		}
		if storageRow >= 0 {
			var items []budgetCutItem
			for _, x := range b.pool {
				items = append(items, budgetCutItem{col: refs.indexCol[x.ID()], sizeMB: x.SizeBytes() / 1e6})
			}
			b.cuts += addBudgetCuts(sb.prog, items, sb.opt.SpaceBudgetBytes/1e6)
		}

		addPlanVars := func(space *planner.PlanSpace, chooseRow int, weight float64, mk func(*planner.Plan) planRef) {
			linkRow := map[string]int{}
			var linkOrder []string
			for _, plan := range space.Plans {
				entries := []lp.Entry{{Row: chooseRow, Coef: 1}}
				for _, x := range plan.Indexes() {
					r, ok := linkRow[x.ID()]
					if !ok {
						r = sb.prog.AddRow(math.Inf(-1), 0)
						linkRow[x.ID()] = r
						linkOrder = append(linkOrder, x.ID())
					}
					entries = append(entries, lp.Entry{Row: r, Coef: 1})
				}
				raw := weight * plan.Cost
				col := sb.addBinary(share*raw, t, raw, 0, entries...)
				refs.planCols[col] = mk(plan)
				refs.planCol[plan] = col
			}
			sort.Strings(linkOrder)
			for _, id := range linkOrder {
				sb.prog.AddColEntry(refs.indexCol[id], linkRow[id], -1)
			}
		}

		for _, qb := range b.queries {
			chooseRow := sb.prog.AddRow(1, 1)
			qb := qb
			addPlanVars(qb.space, chooseRow, b.w.Weight(qb.ws), func(pl *planner.Plan) planRef {
				return planRef{query: qb, plan: pl}
			})
		}
		for _, ub := range b.updates {
			for _, g := range ub.groups {
				zCol := sb.addBinary(0, t, 0, 0)
				refs.zCol[g] = zCol
				gateRow := sb.prog.AddRow(0, 0)
				sb.prog.AddColEntry(zCol, gateRow, -1)
				force := sb.prog.AddRow(math.Inf(-1), 0)
				sb.prog.AddColEntry(zCol, force, -float64(len(g.indexes)))
				for _, x := range g.indexes {
					sb.prog.AddColEntry(refs.indexCol[x.ID()], force, 1)
				}
				ub, g := ub, g
				addPlanVars(g.space, gateRow, b.w.Weight(ub.ws), func(pl *planner.Plan) planRef {
					return planRef{group: g, ub: ub, plan: pl}
				})
			}
		}
	}

	// Migration linking: m[t][i] must cover any presence not inherited
	// from the previous phase. The first phase inherits nothing, so its
	// whole schema is charged as the initial build.
	for t, b := range sb.builders {
		mcols := map[string]int{}
		sb.migCols = append(sb.migCols, mcols)
		for _, x := range b.pool {
			id := x.ID()
			buildCost := migrate.BuildCost(x, sb.mig)
			row := sb.prog.AddRow(math.Inf(-1), 0)
			mcol := sb.addBinary(buildCost, t, 0, buildCost, lp.Entry{Row: row, Coef: -1})
			mcols[id] = mcol
			sb.prog.AddColEntry(sb.refs[t].indexCol[id], row, 1)
			if t > 0 {
				if prev, ok := sb.refs[t-1].indexCol[id]; ok {
					sb.prog.AddColEntry(prev, row, -1)
				}
			}
		}
	}
}

// greedyIncumbent warm-starts the joint solve: each phase takes its
// cheapest plans (the static greedy), and migration variables cover the
// resulting presence transitions.
func (sb *seriesBuilder) greedyIncumbent() []float64 {
	x := make([]float64, sb.prog.NumCols())
	prev := map[string]bool{}
	for t, b := range sb.builders {
		refs := sb.refs[t]
		selected := map[string]bool{}
		mark := func(pl *planner.Plan) {
			for _, ix := range pl.Indexes() {
				selected[ix.ID()] = true
			}
		}
		for _, qb := range b.queries {
			pl := qb.space.Plans[0]
			x[refs.planCol[pl]] = 1
			mark(pl)
		}
		chosen := map[*supportGroup]bool{}
		for changed := true; changed; {
			changed = false
			for _, ub := range b.updates {
				for _, g := range ub.groups {
					if chosen[g] {
						continue
					}
					forced := false
					for _, ix := range g.indexes {
						if selected[ix.ID()] {
							forced = true
							break
						}
					}
					if !forced {
						continue
					}
					chosen[g] = true
					changed = true
					pl := g.space.Plans[0]
					x[refs.planCol[pl]] = 1
					x[refs.zCol[g]] = 1
					mark(pl)
				}
			}
		}
		for id := range selected {
			x[refs.indexCol[id]] = 1
			if !prev[id] {
				x[sb.migCols[t][id]] = 1
			}
		}
		prev = selected
	}
	return x
}

// extract decodes the joint solution into per-phase recommendations and
// the migration schedule, accumulating costs in column order so the
// reported numbers are bit-identical across runs and worker counts.
func (sb *seriesBuilder) extract(res *bip.Result, sr *SeriesRecommendation) error {
	phaseCost := make([]float64, len(sb.builders))
	for col := 0; col < len(sb.colRaw); col++ {
		if res.X[col] < 0.5 {
			continue
		}
		if t := sb.colPhase[col]; t >= 0 {
			phaseCost[t] += sb.colRaw[col]
		}
	}

	var prevSchema *schema.Schema
	for t, b := range sb.builders {
		rec := &Recommendation{}
		if err := b.extract(res, sb.refs[t], rec); err != nil {
			return fmt.Errorf("search: phase %q: %w", sb.w.Phases[t].Name, err)
		}
		rec.Cost = phaseCost[t]
		build, drop := migrate.Diff(prevSchema, rec.Schema)
		pr := &PhaseRecommendation{
			Phase:         sb.w.Phases[t],
			Rec:           rec,
			Build:         build,
			Drop:          drop,
			MigrationCost: migrate.EstimatedCost(build, sb.mig),
		}
		sr.Phases = append(sr.Phases, pr)
		sr.WorkloadCost += sb.shares[t] * phaseCost[t]
		sr.MigrationCost += pr.MigrationCost
		prevSchema = rec.Schema
	}
	sr.TotalCost = sr.WorkloadCost + sr.MigrationCost
	return nil
}

// publishSeries records series-level metrics, mirroring publishRun.
func publishSeries(opt Options, sr *SeriesRecommendation, cacheBefore cost.CacheStats) {
	if opt.Obs == nil {
		return
	}
	opt.Obs.Counter("search.advise_series_runs").Inc()
	opt.Obs.Counter("search.series_phases").Add(int64(len(sr.Phases)))
	opt.Obs.Counter("search.nodes").Add(int64(sr.Stats.Nodes))
	migrations := 0
	for t, pr := range sr.Phases {
		if t > 0 && len(pr.Build) > 0 {
			migrations++
		}
	}
	opt.Obs.Counter("search.series_migrations").Add(int64(migrations))
	opt.Obs.Gauge("search.series_migration_cost").Add(sr.MigrationCost)

	g := func(name string, d time.Duration) {
		opt.Obs.Gauge(name).Add(float64(d.Nanoseconds()) / 1e6)
	}
	g("search.wall_ms.enumeration", sr.Timings.Enumeration)
	g("search.wall_ms.cost_calculation", sr.Timings.CostCalculation)
	g("search.wall_ms.bip_construction", sr.Timings.BIPConstruction)
	g("search.wall_ms.bip_solving", sr.Timings.BIPSolving)
	g("search.wall_ms.total", sr.Timings.Total)

	after := opt.Planner.Cache.Stats()
	opt.Obs.VolatileCounter("cost.cache.hits").Add(int64(after.Hits - cacheBefore.Hits))
	opt.Obs.VolatileCounter("cost.cache.misses").Add(int64(after.Misses - cacheBefore.Misses))
	opt.Obs.VolatileCounter("cost.cache.contention").Add(int64(after.Contention - cacheBefore.Contention))
	opt.Obs.VolatileCounter("cost.cache.entries").Add(int64(after.Entries - cacheBefore.Entries))
}

// Format renders the schema series as the nose CLI prints it: one block
// per phase with its migration points, schema, and costs, followed by
// the series totals.
func (sr *SeriesRecommendation) Format() string {
	var b strings.Builder
	for i, pr := range sr.Phases {
		name := "workload"
		dur := 1.0
		if pr.Phase != nil {
			name = pr.Phase.Name
			dur = pr.Phase.EffectiveDuration()
		}
		fmt.Fprintf(&b, "phase %d: %s (duration %g)\n", i, name, dur)
		if len(pr.Build) > 0 {
			fmt.Fprintf(&b, "  build: %s\n", indexNames(pr.Build))
		}
		if len(pr.Drop) > 0 {
			fmt.Fprintf(&b, "  drop:  %s\n", indexNames(pr.Drop))
		}
		fmt.Fprintf(&b, "  migration cost: %.3f\n", pr.MigrationCost)
		fmt.Fprintf(&b, "  workload cost:  %.3f\n", pr.Rec.Cost)
		fmt.Fprintf(&b, "  schema (%d column families):\n", pr.Rec.Schema.Len())
		for _, line := range strings.Split(strings.TrimRight(pr.Rec.Schema.String(), "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	fmt.Fprintf(&b, "series: workload cost %.3f + migration cost %.3f = total %.3f\n",
		sr.WorkloadCost, sr.MigrationCost, sr.TotalCost)
	return b.String()
}

func indexNames(xs []*schema.Index) string {
	names := make([]string, len(xs))
	for i, x := range xs {
		names[i] = x.Name
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
