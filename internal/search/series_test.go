package search_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"nose/internal/hotel"
	"nose/internal/nosedsl"
	"nose/internal/planner"
	"nose/internal/search"
	"nose/internal/workload"

	"nose/internal/bip"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// seriesTestOptions keeps series solves small enough for tests while
// staying fully deterministic. The golden file is rendered under
// exactly these options; change them and the golden must be
// regenerated with -update.
func seriesTestOptions() search.Options {
	return search.Options{
		Planner:         planner.Config{MaxPlansPerQuery: 6},
		MaxSupportPlans: 4,
		BIP:             bip.Options{MaxNodes: 400},
	}
}

// loadPhasedHotel parses the shipped three-phase hotel workload.
func loadPhasedHotel(t *testing.T) *workload.Workload {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "hotel-phases.nose"))
	if err != nil {
		t.Fatal(err)
	}
	_, w, err := nosedsl.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Phases) != 3 {
		t.Fatalf("expected 3 phases, got %d", len(w.Phases))
	}
	return w
}

// hotelWorkload builds the in-memory hotel fixture used by the static
// advisor tests.
func hotelWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	g := hotel.Graph()
	w := workload.New(g)
	for i, src := range []string{hotel.ExampleQuery, hotel.PrefixQuery, hotel.POIQuery} {
		q := workload.MustParseQuery(g, src)
		q.Label = string(rune('A' + i))
		w.Add(q, float64(i+1))
	}
	w.Add(workload.MustParse(g, hotel.UpdateStatements[0]), 0.5)
	w.Add(workload.MustParse(g, hotel.UpdateStatements[2]), 0.25)
	return w
}

// TestAdviseSeriesSinglePhaseMatchesAdvise: with zero or one phase
// there is no series decision to make, and AdviseSeries must be
// bit-identical to Advise — same schema bytes, same objective bits,
// same plan signatures — with no migration charged.
func TestAdviseSeriesSinglePhaseMatchesAdvise(t *testing.T) {
	for _, phases := range []int{0, 1} {
		w := hotelWorkload(t)
		if phases == 1 {
			w.AddPhase(&workload.Phase{Name: "only", Duration: 1})
		}
		opt := seriesTestOptions()
		rec, err := search.Advise(w, opt)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := search.AdviseSeries(w, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(sr.Phases) != 1 {
			t.Fatalf("%d phases: got %d series entries", phases, len(sr.Phases))
		}
		pr := sr.Phases[0]
		if pr.Rec.Schema.String() != rec.Schema.String() {
			t.Errorf("%d phases: schemas differ:\n%s\nvs\n%s", phases, pr.Rec.Schema, rec.Schema)
		}
		if pr.Rec.Cost != rec.Cost {
			t.Errorf("%d phases: costs differ: %v vs %v", phases, pr.Rec.Cost, rec.Cost)
		}
		if sr.TotalCost != rec.Cost || sr.WorkloadCost != rec.Cost {
			t.Errorf("%d phases: series totals %v/%v != advise cost %v",
				phases, sr.WorkloadCost, sr.TotalCost, rec.Cost)
		}
		if sr.MigrationCost != 0 || pr.MigrationCost != 0 {
			t.Errorf("%d phases: migration charged on a degenerate series", phases)
		}
		if len(pr.Rec.Queries) != len(rec.Queries) {
			t.Fatalf("%d phases: query counts differ", phases)
		}
		for i := range rec.Queries {
			if pr.Rec.Queries[i].Plan.Signature() != rec.Queries[i].Plan.Signature() {
				t.Errorf("%d phases: plan %d differs", phases, i)
			}
		}
	}
}

// TestAdviseSeriesWorkerInvariance: the schema series — phase schemas,
// migration points, and every printed cost — must be byte-identical
// for 1, 4, and 8 workers.
func TestAdviseSeriesWorkerInvariance(t *testing.T) {
	var base string
	for _, workers := range []int{1, 4, 8} {
		opt := seriesTestOptions()
		opt.Workers = workers
		sr, err := search.AdviseSeries(loadPhasedHotel(t), opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := sr.Format()
		if workers == 1 {
			base = out
			continue
		}
		if out != base {
			t.Errorf("workers=%d series differs from workers=1:\n%s\nvs\n%s", workers, out, base)
		}
	}
}

// TestAdviseSeriesGolden pins the printed per-phase schema series for
// the shipped hotel-phases workload. Regenerate with:
//
//	go test ./internal/search -run TestAdviseSeriesGolden -update
func TestAdviseSeriesGolden(t *testing.T) {
	sr, err := search.AdviseSeries(loadPhasedHotel(t), seriesTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := sr.Format()
	golden := filepath.Join("testdata", "hotel-phases.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("series output drifted from golden (rerun with -update if intended):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestAdviseSeriesChargesInitialBuild: the first phase's installation
// is part of the objective, so the reported migration cost must cover
// every family of phase 0 — a free initial build would let the solver
// pre-install everything at t=0 and dodge all migration charges.
func TestAdviseSeriesChargesInitialBuild(t *testing.T) {
	sr, err := search.AdviseSeries(loadPhasedHotel(t), seriesTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	p0 := sr.Phases[0]
	if len(p0.Build) != p0.Rec.Schema.Len() {
		t.Errorf("phase 0 builds %d of %d families", len(p0.Build), p0.Rec.Schema.Len())
	}
	if p0.MigrationCost <= 0 {
		t.Errorf("phase 0 migration cost %v, want > 0", p0.MigrationCost)
	}
	if sr.MigrationCost < p0.MigrationCost {
		t.Errorf("series migration cost %v below phase 0's %v", sr.MigrationCost, p0.MigrationCost)
	}
	if sr.TotalCost != sr.WorkloadCost+sr.MigrationCost {
		t.Errorf("total %v != workload %v + migration %v", sr.TotalCost, sr.WorkloadCost, sr.MigrationCost)
	}
}
