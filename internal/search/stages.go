package search

import (
	"fmt"

	"nose/internal/bip"
	"nose/internal/enumerator"
	"nose/internal/planner"
	"nose/internal/workload"
)

// BuildPlans runs the plan-space generation stage alone — everything
// newBuilder does: planning every query, every update's maintenance,
// and every support-query group. It exists so benchmarks can measure
// this stage separately from enumeration and solving.
func BuildPlans(w *workload.Workload, enumRes *enumerator.Result, opt Options) error {
	opt = opt.withDefaults()
	pl := planner.New(enumRes.Pool, opt.CostModel, opt.Planner)
	_, err := newBuilder(w, pl, enumRes, opt)
	return err
}

// Prepared is a formulated advisor problem whose solve stage can be run
// repeatedly — benchmarks use it to time the branch and bound phases
// in isolation from enumeration and plan-space generation.
type Prepared struct {
	b         *builder
	opt       Options
	prog      *bip.Program
	refs      *colRefs
	incumbent []float64
}

// Prepare plans the workload and formulates the phase-1 program.
func Prepare(w *workload.Workload, enumRes *enumerator.Result, opt Options) (*Prepared, error) {
	opt = opt.withDefaults()
	pl := planner.New(enumRes.Pool, opt.CostModel, opt.Planner)
	b, err := newBuilder(w, pl, enumRes, opt)
	if err != nil {
		return nil, err
	}
	prog, refs := b.formulate(nil)
	return &Prepared{
		b:         b,
		opt:       opt,
		prog:      prog,
		refs:      refs,
		incumbent: b.greedyIncumbent(prog, refs),
	}, nil
}

// Solve runs both solver phases, mirroring Advise: minimize workload
// cost, then minimize the number of paid column families at that cost
// (the phase-2 program is formulated here, matching Advise's split of
// work between construction and solving).
func (p *Prepared) Solve() error {
	phase1 := p.opt.BIP
	phase1.Incumbent = p.incumbent
	res1, err := p.prog.Solve(phase1)
	if err != nil {
		return fmt.Errorf("search: phase 1 solve: %w", err)
	}
	if !res1.HasSolution {
		return fmt.Errorf("search: phase 1 %v: no feasible schema", res1.Status)
	}
	if p.opt.SkipMinimizeSchema {
		return nil
	}
	pin := res1.Objective
	prog2, _ := p.b.formulate(&pin)
	phase2 := p.opt.BIP
	phase2.Incumbent = res1.X
	_, err = prog2.Solve(phase2)
	return err
}

// SolvePhases is Prepare followed by one Solve, for callers that do not
// need to amortize formulation across repeated solves.
func SolvePhases(w *workload.Workload, enumRes *enumerator.Result, opt Options) error {
	p, err := Prepare(w, enumRes, opt)
	if err != nil {
		return err
	}
	return p.Solve()
}
