// Package journal is the durable write-ahead log that makes live schema
// migrations crash-consistent. Every migrate.Live state transition,
// family creation, and backfill chunk watermark is appended as one
// checksummed, length-prefixed binary record with a strictly increasing
// sequence number; harness.Recover replays the log after a (simulated)
// process crash to decide whether the in-flight migration resumes from
// its watermark, rolls forward through cutover, or rolls back.
//
// Durability is simulated: Append models a synchronous fsync, so a
// crash injected at the append point (faults.SiteJournal) loses exactly
// the record being appended and nothing before it — the durable prefix
// is always a valid journal. Replay therefore tolerates a truncated
// final record (the crash artifact) but fails closed with *CorruptError
// on anything else: checksum mismatches, sequence gaps or duplicates,
// unknown record kinds, or oversized frames.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"

	"nose/internal/faults"
	"nose/internal/obs"
)

// Kind discriminates journal records.
type Kind uint8

const (
	// KindStart opens a migration: the phase name and the family names
	// being built and dropped. Everything after the latest Start belongs
	// to that migration.
	KindStart Kind = iota + 1
	// KindCreated records that one build family was created (empty) in
	// the store and is receiving dual writes.
	KindCreated
	// KindState records a migrate.State transition (the numeric state).
	KindState
	// KindChunk records the backfill watermark: every snapshot record
	// below Cursor is durably in the store.
	KindChunk
	// KindCutoverApplied records that the harness swapped its plan table
	// onto the new schema — the recovery point separating roll-back
	// from roll-forward.
	KindCutoverApplied
	// KindRecovered records a completed recovery and its outcome code;
	// replay treats it as a marker.
	KindRecovered

	kindMax = KindRecovered
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case KindStart:
		return "start"
	case KindCreated:
		return "created"
	case KindState:
		return "state"
	case KindChunk:
		return "chunk"
	case KindCutoverApplied:
		return "cutover-applied"
	case KindRecovered:
		return "recovered"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one journal entry. Which fields are meaningful depends on
// Kind; Seq is assigned by Append.
type Record struct {
	// Seq is the record's sequence number, strictly increasing from 0.
	Seq uint64
	// Kind discriminates the record.
	Kind Kind
	// Name is the phase name (KindStart) or family name (KindCreated).
	Name string
	// Build and Drop are the family names of a KindStart record.
	Build, Drop []string
	// State is the numeric migrate.State of a KindState record.
	State uint8
	// Cursor is the backfill watermark of a KindChunk record.
	Cursor uint64
	// Outcome is the recovery outcome code of a KindRecovered record.
	Outcome uint8
}

// CorruptError reports a journal byte stream that cannot have been
// produced by crash-truncating a valid journal: replay fails closed
// rather than recovering from it.
type CorruptError struct {
	// Offset is the byte offset of the bad frame.
	Offset int
	// Reason says what was wrong.
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("journal: corrupt at byte %d: %s", e.Offset, e.Reason)
}

// maxFrameBytes bounds one record's payload; larger length prefixes are
// corruption, not records (and keep hostile inputs from ballooning).
const maxFrameBytes = 1 << 20

// DefaultSyncMillis is the simulated time one synchronous journal
// append (write + fsync) charges.
const DefaultSyncMillis = 0.05

// Options configures a journal.
type Options struct {
	// Crashes injects crashes at the append point; nil never crashes.
	Crashes *faults.Crashes
	// SyncMillis is the simulated cost per durable append; <= 0 means
	// DefaultSyncMillis.
	SyncMillis float64
	// Obs, when set, counts appends and bytes into a registry.
	Obs *obs.Registry
}

// Journal is an append-only migration log with simulated fsync. All
// methods are safe for concurrent use.
type Journal struct {
	mu        sync.Mutex
	data      []byte
	nextSeq   uint64
	records   int
	simMillis float64
	crashes   *faults.Crashes
	syncMs    float64

	appends, bytes *obs.Counter
}

// New returns an empty journal.
func New(opts Options) *Journal {
	j := &Journal{crashes: opts.Crashes, syncMs: opts.SyncMillis}
	if j.syncMs <= 0 {
		j.syncMs = DefaultSyncMillis
	}
	if opts.Obs != nil {
		j.appends = opts.Obs.Counter("journal.appends")
		j.bytes = opts.Obs.Counter("journal.bytes")
	}
	return j
}

// Open validates a durable byte stream (as read back after a crash) and
// returns a journal that continues appending after its last valid
// record, plus the records recovered. A truncated final record is
// discarded silently — that is the expected crash artifact; any other
// damage returns a *CorruptError and no journal.
func Open(data []byte, opts Options) (*Journal, []Record, error) {
	recs, valid, err := replay(data)
	if err != nil {
		return nil, nil, err
	}
	j := New(opts)
	j.data = append(j.data, data[:valid]...)
	j.records = len(recs)
	if n := len(recs); n > 0 {
		j.nextSeq = recs[n-1].Seq + 1
	}
	return j, recs, nil
}

// Append assigns the record its sequence number, encodes it, and makes
// it durable, returning the simulated sync time charged. When a crash
// is armed at this append, the record is lost — the durable prefix
// still ends at the previous record — and the crash error is returned.
func (j *Journal) Append(r Record) (float64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.crashes.Point(faults.SiteJournal); err != nil {
		return 0, err
	}
	r.Seq = j.nextSeq
	frame, err := encode(r)
	if err != nil {
		return 0, err
	}
	j.nextSeq++
	j.records++
	j.data = append(j.data, frame...)
	j.simMillis += j.syncMs
	if j.appends != nil {
		j.appends.Inc()
		j.bytes.Add(int64(len(frame)))
	}
	return j.syncMs, nil
}

// Durable returns a copy of the journal's durable byte stream — what a
// restarted process would read back.
func (j *Journal) Durable() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]byte(nil), j.data...)
}

// Records returns the number of durable records.
func (j *Journal) Records() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// SimMillis returns the simulated time spent on durable appends.
func (j *Journal) SimMillis() float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.simMillis
}

// Replay decodes a journal byte stream into its records. A truncated
// final record is tolerated (the crash artifact); every other
// inconsistency — bad checksum, sequence gap or duplicate, unknown
// kind, oversized frame — returns a *CorruptError.
func Replay(data []byte) ([]Record, error) {
	recs, _, err := replay(data)
	return recs, err
}

// replay also returns the byte length of the valid prefix.
func replay(data []byte) ([]Record, int, error) {
	var recs []Record
	off := 0
	wantSeq := uint64(0)
	for off < len(data) {
		if len(data)-off < 4 {
			break // truncated length prefix: crash artifact
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n <= 0 || n > maxFrameBytes {
			return nil, 0, &CorruptError{Offset: off, Reason: fmt.Sprintf("frame length %d out of range", n)}
		}
		if len(data)-off < 4+n+8 {
			break // truncated payload or checksum: crash artifact
		}
		payload := data[off+4 : off+4+n]
		sum := binary.LittleEndian.Uint64(data[off+4+n:])
		h := fnv.New64a()
		h.Write(payload)
		if h.Sum64() != sum {
			return nil, 0, &CorruptError{Offset: off, Reason: "checksum mismatch"}
		}
		rec, err := decode(payload, off)
		if err != nil {
			return nil, 0, err
		}
		if rec.Seq != wantSeq {
			return nil, 0, &CorruptError{Offset: off,
				Reason: fmt.Sprintf("sequence %d, want %d (duplicated or reordered record)", rec.Seq, wantSeq)}
		}
		wantSeq++
		recs = append(recs, rec)
		off += 4 + n + 8
	}
	return recs, off, nil
}

// encode builds one frame: u32 length, payload, u64 FNV-64a checksum.
func encode(r Record) ([]byte, error) {
	if r.Kind == 0 || r.Kind > kindMax {
		return nil, fmt.Errorf("journal: encode: unknown kind %d", r.Kind)
	}
	p := []byte{byte(r.Kind)}
	p = binary.AppendUvarint(p, r.Seq)
	switch r.Kind {
	case KindStart:
		p = appendString(p, r.Name)
		p = appendStrings(p, r.Build)
		p = appendStrings(p, r.Drop)
	case KindCreated:
		p = appendString(p, r.Name)
	case KindState:
		p = append(p, r.State)
	case KindChunk:
		p = binary.AppendUvarint(p, r.Cursor)
	case KindCutoverApplied:
		// no payload beyond the header
	case KindRecovered:
		p = append(p, r.Outcome)
	}
	if len(p) > maxFrameBytes {
		return nil, fmt.Errorf("journal: encode: record of %d bytes exceeds frame limit", len(p))
	}
	frame := make([]byte, 0, 4+len(p)+8)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(p)))
	frame = append(frame, p...)
	h := fnv.New64a()
	h.Write(p)
	frame = binary.LittleEndian.AppendUint64(frame, h.Sum64())
	return frame, nil
}

// decode parses one checksum-verified payload.
func decode(p []byte, off int) (Record, error) {
	bad := func(reason string) (Record, error) {
		return Record{}, &CorruptError{Offset: off, Reason: reason}
	}
	if len(p) == 0 {
		return bad("empty payload")
	}
	r := Record{Kind: Kind(p[0])}
	if r.Kind == 0 || r.Kind > kindMax {
		return bad(fmt.Sprintf("unknown record kind %d", p[0]))
	}
	p = p[1:]
	var n int
	r.Seq, n = binary.Uvarint(p)
	if n <= 0 {
		return bad("bad sequence varint")
	}
	p = p[n:]
	var err error
	switch r.Kind {
	case KindStart:
		if r.Name, p, err = readString(p); err != nil {
			return bad("start: " + err.Error())
		}
		if r.Build, p, err = readStrings(p); err != nil {
			return bad("start build list: " + err.Error())
		}
		if r.Drop, p, err = readStrings(p); err != nil {
			return bad("start drop list: " + err.Error())
		}
	case KindCreated:
		if r.Name, p, err = readString(p); err != nil {
			return bad("created: " + err.Error())
		}
	case KindState:
		if len(p) != 1 {
			return bad("state payload size")
		}
		if p[0] > 5 {
			return bad(fmt.Sprintf("state code %d out of range", p[0]))
		}
		r.State = p[0]
		p = nil
	case KindChunk:
		r.Cursor, n = binary.Uvarint(p)
		if n <= 0 {
			return bad("bad cursor varint")
		}
		p = p[n:]
	case KindCutoverApplied:
		// nothing
	case KindRecovered:
		if len(p) != 1 {
			return bad("recovered payload size")
		}
		r.Outcome = p[0]
		p = nil
	}
	if len(p) != 0 {
		return bad("trailing bytes in payload")
	}
	return r, nil
}

func appendString(p []byte, s string) []byte {
	p = binary.AppendUvarint(p, uint64(len(s)))
	return append(p, s...)
}

func appendStrings(p []byte, ss []string) []byte {
	p = binary.AppendUvarint(p, uint64(len(ss)))
	for _, s := range ss {
		p = appendString(p, s)
	}
	return p
}

func readString(p []byte) (string, []byte, error) {
	n, w := binary.Uvarint(p)
	if w <= 0 || n > uint64(len(p)-w) {
		return "", nil, fmt.Errorf("bad string length")
	}
	return string(p[w : w+int(n)]), p[w+int(n):], nil
}

func readStrings(p []byte) ([]string, []byte, error) {
	n, w := binary.Uvarint(p)
	if w <= 0 || n > uint64(len(p)-w) {
		return nil, nil, fmt.Errorf("bad list length")
	}
	p = p[w:]
	var out []string
	for i := uint64(0); i < n; i++ {
		var s string
		var err error
		if s, p, err = readString(p); err != nil {
			return nil, nil, err
		}
		out = append(out, s)
	}
	return out, p, nil
}
