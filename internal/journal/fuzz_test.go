package journal_test

import (
	"errors"
	"testing"

	"nose/internal/journal"
)

// FuzzJournalReplay feeds arbitrary byte streams — including mutations
// of valid journals: truncations, duplicated frames, flipped bytes —
// into Replay and checks the recovery contract: either the stream
// replays to a sequence-consistent record list (a state recovery can be
// verified against), or it fails closed with the typed *CorruptError.
// A successful replay must round-trip: re-encoding the records through
// a fresh journal and replaying again yields the same list.
func FuzzJournalReplay(f *testing.F) {
	j := journal.New(journal.Options{})
	for _, r := range []journal.Record{
		{Kind: journal.KindStart, Name: "p", Build: []string{"a", "b"}, Drop: []string{"c"}},
		{Kind: journal.KindCreated, Name: "a"},
		{Kind: journal.KindState, State: 1},
		{Kind: journal.KindChunk, Cursor: 42},
		{Kind: journal.KindCutoverApplied},
		{Kind: journal.KindState, State: 4},
	} {
		if _, err := j.Append(r); err != nil {
			f.Fatal(err)
		}
	}
	valid := j.Durable()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add(append(append([]byte(nil), valid...), valid...))
	f.Add([]byte{})
	f.Add([]byte("\x01\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := journal.Replay(data)
		if err != nil {
			var ce *journal.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Replay failed without typed CorruptError: %v", err)
			}
			return
		}
		// Recovered state must be internally consistent...
		for i, r := range recs {
			if r.Seq != uint64(i) {
				t.Fatalf("record %d has seq %d", i, r.Seq)
			}
			if r.Kind == 0 || r.Kind > journal.KindRecovered {
				t.Fatalf("record %d has invalid kind %d", i, r.Kind)
			}
		}
		// ...and re-encodable: writing the recovered records to a fresh
		// journal replays to the same list (recovery is idempotent).
		j2 := journal.New(journal.Options{})
		for _, r := range recs {
			if _, err := j2.Append(r); err != nil {
				t.Fatalf("re-append %+v: %v", r, err)
			}
		}
		again, err := journal.Replay(j2.Durable())
		if err != nil {
			t.Fatalf("replay of re-encoded journal: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("re-encoded journal has %d records, want %d", len(again), len(recs))
		}
		for i := range recs {
			if again[i].Kind != recs[i].Kind || again[i].Name != recs[i].Name ||
				again[i].State != recs[i].State || again[i].Cursor != recs[i].Cursor ||
				again[i].Outcome != recs[i].Outcome {
				t.Fatalf("record %d changed across round trip: %+v vs %+v", i, recs[i], again[i])
			}
		}
	})
}
