package journal_test

import (
	"testing"

	"nose/internal/journal"
)

// BenchmarkJournalAppend measures the cost of one durable append of a
// typical chunk-watermark record — the journal write on the live
// migration's hot path (one per backfill chunk). Gated against
// BENCH_baseline.json in CI.
func BenchmarkJournalAppend(b *testing.B) {
	j := journal.New(journal.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.Append(journal.Record{Kind: journal.KindChunk, Cursor: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
