package journal_test

import (
	"errors"
	"testing"

	"nose/internal/faults"
	"nose/internal/journal"
)

func sampleRecords() []journal.Record {
	return []journal.Record{
		{Kind: journal.KindStart, Name: "phase-1", Build: []string{"cf1_m1", "cf2_m1"}, Drop: []string{"cf0"}},
		{Kind: journal.KindCreated, Name: "cf1_m1"},
		{Kind: journal.KindCreated, Name: "cf2_m1"},
		{Kind: journal.KindState, State: 1},
		{Kind: journal.KindChunk, Cursor: 64},
		{Kind: journal.KindChunk, Cursor: 128},
		{Kind: journal.KindState, State: 2},
		{Kind: journal.KindCutoverApplied},
		{Kind: journal.KindState, State: 4},
		{Kind: journal.KindRecovered, Outcome: 3},
	}
}

// TestRoundTrip: append → Durable → Replay reproduces every field and
// assigns strictly increasing sequence numbers.
func TestRoundTrip(t *testing.T) {
	j := journal.New(journal.Options{})
	want := sampleRecords()
	total := 0.0
	for _, r := range want {
		ms, err := j.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		if ms <= 0 {
			t.Fatalf("append charged %g ms", ms)
		}
		total += ms
	}
	if j.Records() != len(want) {
		t.Fatalf("Records = %d, want %d", j.Records(), len(want))
	}
	if j.SimMillis() != total {
		t.Fatalf("SimMillis = %g, want %g", j.SimMillis(), total)
	}
	got, err := journal.Replay(j.Durable())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Seq != uint64(i) {
			t.Errorf("record %d: seq %d", i, r.Seq)
		}
		w := want[i]
		if r.Kind != w.Kind || r.Name != w.Name || r.State != w.State || r.Cursor != w.Cursor || r.Outcome != w.Outcome {
			t.Errorf("record %d = %+v, want %+v", i, r, w)
		}
		if len(r.Build) != len(w.Build) || len(r.Drop) != len(w.Drop) {
			t.Errorf("record %d lists = %+v, want %+v", i, r, w)
		}
	}
}

// TestTruncatedTailTolerated: cutting a journal anywhere inside its
// final frame replays the intact prefix without error — that is the
// crash artifact recovery must accept.
func TestTruncatedTailTolerated(t *testing.T) {
	j := journal.New(journal.Options{})
	for _, r := range sampleRecords() {
		if _, err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	data := j.Durable()
	full, err := journal.Replay(data)
	if err != nil {
		t.Fatal(err)
	}
	for cut := len(data) - 1; cut > len(data)-12; cut-- {
		got, err := journal.Replay(data[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != len(full)-1 {
			t.Fatalf("cut %d: %d records, want %d", cut, len(got), len(full)-1)
		}
	}
}

// TestCorruptionFailsClosed: flipped payload bytes, duplicated frames,
// and oversized length prefixes all return *CorruptError.
func TestCorruptionFailsClosed(t *testing.T) {
	j := journal.New(journal.Options{})
	for _, r := range sampleRecords() {
		if _, err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	data := j.Durable()

	var ce *journal.CorruptError
	// Flip one payload byte of the first frame (offset 4 is the kind).
	flipped := append([]byte(nil), data...)
	flipped[5] ^= 0xff
	if _, err := journal.Replay(flipped); !errors.As(err, &ce) {
		t.Fatalf("flipped byte: got %v, want CorruptError", err)
	}
	// Duplicate the first frame: checksum passes, sequence does not.
	n := 4 + int(uint32(data[0])|uint32(data[1])<<8|uint32(data[2])<<16|uint32(data[3])<<24) + 8
	dup := append(append([]byte(nil), data[:n]...), data...)
	if _, err := journal.Replay(dup); !errors.As(err, &ce) {
		t.Fatalf("duplicated frame: got %v, want CorruptError", err)
	}
	// An absurd length prefix is corruption, not truncation.
	huge := append([]byte(nil), data...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f
	if _, err := journal.Replay(huge); !errors.As(err, &ce) {
		t.Fatalf("oversized frame: got %v, want CorruptError", err)
	}
}

// TestOpenContinues: reopening a journal (possibly crash-truncated)
// continues the sequence so the combined stream stays replayable.
func TestOpenContinues(t *testing.T) {
	j := journal.New(journal.Options{})
	recs := sampleRecords()
	for _, r := range recs[:4] {
		if _, err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	data := j.Durable()
	// Simulate a crash that truncated the tail mid-frame.
	j2, got, err := journal.Open(data[:len(data)-3], journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("recovered %d records, want 3", len(got))
	}
	for _, r := range recs[4:] {
		if _, err := j2.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	all, err := journal.Replay(j2.Durable())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3+len(recs[4:]) {
		t.Fatalf("combined stream has %d records, want %d", len(all), 3+len(recs[4:]))
	}
	// Garbage does not open.
	if _, _, err := journal.Open([]byte("\x02\x00\x00\x00xx12345678"), journal.Options{}); err == nil {
		t.Fatal("Open accepted garbage")
	}
}

// TestCrashAtAppend: an armed crash loses exactly the appended record,
// the durable prefix stays valid, and the journal is dead afterwards.
func TestCrashAtAppend(t *testing.T) {
	cr := faults.NewCrashes()
	cr.Arm(faults.SiteJournal, 2)
	j := journal.New(journal.Options{Crashes: cr})
	recs := sampleRecords()
	var crashErr error
	appended := 0
	for _, r := range recs {
		if _, err := j.Append(r); err != nil {
			crashErr = err
			break
		}
		appended++
	}
	if appended != 2 || !faults.IsCrash(crashErr) {
		t.Fatalf("appended %d before crash (err %v), want 2", appended, crashErr)
	}
	if cr.Fired() == nil || cr.Fired().Index != 2 {
		t.Fatalf("Fired = %+v", cr.Fired())
	}
	// Dead stays dead.
	if _, err := j.Append(recs[0]); !faults.IsCrash(err) {
		t.Fatalf("append after crash: %v", err)
	}
	got, err := journal.Replay(j.Durable())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("durable prefix has %d records, want 2", len(got))
	}
}
