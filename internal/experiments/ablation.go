package experiments

import (
	"fmt"
	"strings"

	"nose/internal/enumerator"
	"nose/internal/planner"
	"nose/internal/rubis"
	"nose/internal/search"
)

// AblationRow is one feature-removal variant's outcome on the RUBiS
// bidding workload.
type AblationRow struct {
	// Variant names the configuration.
	Variant string
	// CostRatio is the estimated workload cost relative to the full
	// advisor.
	CostRatio float64
	// Candidates is the enumerated pool size.
	Candidates int
	// Families is the recommended schema size.
	Families int
}

// AblationResult quantifies the contribution of the advisor's design
// choices (DESIGN.md §5): the Combine supplement, reversed-orientation
// enumeration and planning, and predicate relaxation.
type AblationResult struct {
	// Rows are the variants, the full advisor first.
	Rows []AblationRow
}

// RunAblation advises the RUBiS bidding workload with individual
// features disabled and reports cost degradation.
func RunAblation(cfg Fig11Config) (*AblationResult, error) {
	g := rubis.Graph(cfg.RUBiS)
	w, _, err := rubis.Workload(g)
	if err != nil {
		return nil, err
	}

	variants := []struct {
		name   string
		mutate func(*search.Options)
	}{
		{"full", func(*search.Options) {}},
		{"no-combine", func(o *search.Options) { o.Enumerator.SkipCombine = true }},
		{"no-reverse", func(o *search.Options) {
			o.Enumerator.SkipReverse = true
			o.Planner.SkipReverse = true
		}},
		{"no-relaxation", func(o *search.Options) { o.Planner.SkipRelaxation = true }},
	}

	res := &AblationResult{}
	base := 0.0
	for _, v := range variants {
		opt := cfg.Advisor
		v.mutate(&opt)
		rec, err := search.Advise(w, opt)
		if err != nil {
			// A variant unable to cover the workload is itself a
			// finding: record it with an infinite ratio.
			res.Rows = append(res.Rows, AblationRow{Variant: v.name + " (infeasible: " + err.Error() + ")"})
			continue
		}
		if v.name == "full" {
			base = rec.Cost
		}
		row := AblationRow{
			Variant:    v.name,
			Candidates: rec.Stats.Candidates,
			Families:   rec.Schema.Len(),
		}
		if base > 0 {
			row.CostRatio = rec.Cost / base
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the ablation as a data table.
func (r *AblationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %12s %12s %10s\n", "Variant", "Cost ratio", "Candidates", "Families")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-40s %12.3f %12d %10d\n", row.Variant, row.CostRatio, row.Candidates, row.Families)
	}
	return b.String()
}

// Compile-time assertions that the toggles exist where expected.
var (
	_ = enumerator.Features{}
	_ = planner.Config{}.SkipReverse
)
