package experiments

import (
	"fmt"
	"strings"
	"time"

	"nose/internal/randwork"
	"nose/internal/search"
)

// Fig13Row is one scale factor's advisor runtime breakdown, mirroring
// the stacked bars of paper Fig. 13.
type Fig13Row struct {
	// Factor is the workload scale factor.
	Factor int
	// CostCalculation is time spent generating and costing plan
	// spaces.
	CostCalculation time.Duration
	// BIPConstruction is time spent formulating the integer program.
	BIPConstruction time.Duration
	// BIPSolving is time spent in the solver.
	BIPSolving time.Duration
	// Other covers enumeration, extraction and bookkeeping.
	Other time.Duration
	// Total is the end-to-end advisor runtime.
	Total time.Duration
	// Candidates and Constraints report problem sizes.
	Candidates, Constraints int
}

// Fig13Result is the regenerated paper Fig. 13.
type Fig13Result struct {
	// Rows has one entry per scale factor, ascending.
	Rows []Fig13Row
}

// Fig13Config parameterizes the runtime experiment.
type Fig13Config struct {
	// MaxFactor is the largest scale factor measured (the paper used
	// 10).
	MaxFactor int
	// Seed drives workload generation.
	Seed int64
	// Advisor tunes the runs.
	Advisor search.Options
}

// RunFig13 measures advisor runtime on random workloads of growing
// scale.
func RunFig13(cfg Fig13Config) (*Fig13Result, error) {
	if cfg.MaxFactor <= 0 {
		cfg.MaxFactor = 5
	}
	res := &Fig13Result{}
	for factor := 1; factor <= cfg.MaxFactor; factor++ {
		w, err := randwork.Generate(randwork.Config{Factor: factor, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		rec, err := search.Advise(w, cfg.Advisor)
		if err != nil {
			return nil, fmt.Errorf("experiments: factor %d: %w", factor, err)
		}
		t := rec.Timings
		res.Rows = append(res.Rows, Fig13Row{
			Factor:          factor,
			CostCalculation: t.CostCalculation,
			BIPConstruction: t.BIPConstruction,
			BIPSolving:      t.BIPSolving,
			Other:           t.Enumeration + t.Other,
			Total:           t.Total,
			Candidates:      rec.Stats.Candidates,
			Constraints:     rec.Stats.Constraints,
		})
	}
	return res, nil
}

// Format renders the result as the figure's data table.
func (r *Fig13Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %12s %12s %12s %12s %12s %10s %11s\n",
		"Factor", "CostCalc", "BIPBuild", "BIPSolve", "Other", "Total", "Candidates", "Constraints")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-7d %12s %12s %12s %12s %12s %10d %11d\n",
			row.Factor,
			row.CostCalculation.Round(time.Millisecond),
			row.BIPConstruction.Round(time.Millisecond),
			row.BIPSolving.Round(time.Millisecond),
			row.Other.Round(time.Millisecond),
			row.Total.Round(time.Millisecond),
			row.Candidates, row.Constraints)
	}
	return b.String()
}
