package experiments

import (
	"fmt"
	"strings"

	"nose/internal/rubis"
)

// Fig12Row is one workload mix's weighted average response time per
// system.
type Fig12Row struct {
	// Mix is the workload mix name.
	Mix string
	// Millis maps system name to weighted average simulated response
	// time.
	Millis map[string]float64
}

// Fig12Result is the regenerated paper Fig. 12.
type Fig12Result struct {
	// Rows has one entry per mix in paper order: browsing, bidding,
	// 10x, 100x.
	Rows []Fig12Row
}

// RunFig12 measures the weighted average response time of the three
// schemas under the four workload mixes. NoSE re-runs the advisor per
// mix ("each of these workload mixes leads to a different NoSE
// schema"); the baselines are fixed designs.
func RunFig12(cfg Fig11Config) (*Fig12Result, error) {
	res := &Fig12Result{}
	for _, mix := range rubis.Mixes {
		sub := cfg
		sub.Mix = mix
		f11, err := RunFig11(sub)
		if err != nil {
			return nil, fmt.Errorf("experiments: mix %s: %w", mix, err)
		}
		res.Rows = append(res.Rows, Fig12Row{Mix: mix, Millis: f11.WeightedAvg})
	}
	return res, nil
}

// Format renders the result as the figure's data table.
func (r *Fig12Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s %12s\n", "Mix", "NoSE(ms)", "Normalized", "Expert")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %12.3f %12.3f %12.3f\n",
			row.Mix, row.Millis["NoSE"], row.Millis["Normalized"], row.Millis["Expert"])
	}
	return b.String()
}
