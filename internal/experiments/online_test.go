package experiments_test

import (
	"reflect"
	"strings"
	"testing"

	"nose/internal/drift"
	"nose/internal/experiments"
	"nose/internal/rubis"
)

func onlineTestConfig(workers int) experiments.OnlineConfig {
	opts := fastOptions()
	opts.Workers = workers
	return experiments.OnlineConfig{
		Base: experiments.Fig11Config{
			RUBiS:      rubis.Config{Users: 200, Seed: 1},
			Executions: 40,
			Advisor:    opts,
		},
		Rates:     []float64{0, 1},
		Phases:    3,
		Seed:      7,
		FaultRate: experiments.DefaultOnlineFaultRate,
		// A small window with no cooldown so the short test schedule
		// closes enough windows to trigger.
		Detector: drift.Config{WindowStatements: 25, ConfirmWindows: 1, CooldownWindows: -1},
	}
}

// TestRunOnlineDeterministicSweep: the online sweep — drift detection,
// re-advising, live migration with dual writes, node-faulted rows — must
// reproduce bit for bit from its config and seed, and be byte-identical
// at any advisor worker count. Its Format output is the fingerprint the
// CI determinism smoke compares.
func TestRunOnlineDeterministicSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	res, err := experiments.RunOnline(onlineTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// 2 rates x (clean, faulted) rows.
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, name := range experiments.OnlineStrategies {
			cell, ok := row.Cells[name]
			if !ok {
				t.Fatalf("rate %g faulted=%t: missing %s cell", row.Rate, row.Faulted, name)
			}
			if cell.WorkloadMillis <= 0 {
				t.Errorf("rate %g faulted=%t %s: no workload time", row.Rate, row.Faulted, name)
			}
			if cell.MigrationMillis <= 0 || cell.Migrations < 1 || cell.FamiliesBuilt < 1 {
				t.Errorf("rate %g faulted=%t %s: initial installation not charged: %+v",
					row.Rate, row.Faulted, name, cell)
			}
		}
	}

	// At rate 0 the workload never drifts: the detector must not fire
	// and the online strategy must keep its initial schema.
	for _, row := range res.Rows[:2] {
		online := row.Cells["online"]
		if online.Triggers != 0 || online.Migrations != 1 {
			t.Errorf("rate 0 faulted=%t: %d triggers, %d migrations; want 0 and 1 (initial only)",
				row.Faulted, online.Triggers, online.Migrations)
		}
	}

	// At full drift the detector must notice and act: the online loop
	// re-advises at least once and beats advise-once on total cost.
	for _, row := range res.Rows[2:] {
		online, once := row.Cells["online"], row.Cells["once"]
		if online.Triggers < 1 {
			t.Errorf("rate 1 faulted=%t: drift never triggered", row.Faulted)
		}
		if online.Migrations+online.Aborts < 2 {
			t.Errorf("rate 1 faulted=%t: no migration attempted beyond the initial installation: %+v",
				row.Faulted, online)
		}
		if !row.Faulted && online.TotalMillis() >= once.TotalMillis() {
			t.Errorf("rate 1: online (%.1f ms) does not beat advise-once (%.1f ms)",
				online.TotalMillis(), once.TotalMillis())
		}
	}

	// Identical config and seed reproduce the sweep bit for bit, and
	// the advisor worker count must not change a single byte.
	again, err := experiments.RunOnline(onlineTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Error("same seed produced a different sweep")
	}
	wide, err := experiments.RunOnline(onlineTestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, wide) {
		t.Errorf("worker count changed the sweep:\n%s\nvs\n%s", res.Format(), wide.Format())
	}

	out := res.Format()
	if !strings.Contains(out, "winner") || !strings.Contains(out, "3 phases") {
		t.Errorf("format output incomplete:\n%s", out)
	}
}
