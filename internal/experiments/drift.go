package experiments

import (
	"fmt"
	"math"
	"strings"

	"nose/internal/backend"
	"nose/internal/cost"
	"nose/internal/harness"
	"nose/internal/migrate"
	"nose/internal/rubis"
	"nose/internal/schema"
	"nose/internal/search"
	"nose/internal/workload"
)

// DriftConfig parameterizes the workload-drift sweep: RUBiS traffic
// that starts read-only (browsing) and drifts phase by phase toward the
// write-heavy write100 mix, compared under a statically-advised schema
// versus a re-advised schema series with migration charges.
type DriftConfig struct {
	// Base configures the dataset, advisor, per-phase execution budget
	// (Executions transactions per phase), and observability exactly as
	// in Fig. 11. Base.Mix is ignored — the drift itself decides the
	// mixes.
	Base Fig11Config
	// Rates is the sweep of drift rates in [0,1]: 0 means every phase
	// keeps the browsing mix, 1 means the final phase is fully
	// write100. Empty means DefaultDriftRates.
	Rates []float64
	// Phases is the number of workload phases; minimum (and default) is
	// set by DefaultDriftPhases.
	Phases int
	// Seed drives the transaction parameter sequences; both systems see
	// identical sequences, so the comparison is paired.
	Seed int64
	// Migration prices column family builds. The zero value means
	// migrate.DefaultCostParams(). The advisor sees these prices scaled
	// by 1/(Phases·Executions) so its per-execution workload costs and
	// the one-time build charges are on the same footing as the
	// measured run.
	Migration migrate.CostParams
}

// DefaultDriftRates sweeps from no drift to full browsing→write100
// drift.
var DefaultDriftRates = []float64{0, 0.25, 0.5, 1}

// DefaultDriftPhases is the default timeline length.
const DefaultDriftPhases = 4

// DriftCell is one system's measured totals across the whole timeline
// of one drift rate.
type DriftCell struct {
	// WorkloadMillis is the summed simulated response time of every
	// executed transaction.
	WorkloadMillis float64
	// MigrationMillis is the summed simulated time of schema changes,
	// including the initial installation (both systems build their
	// first schema through the same accounted path).
	MigrationMillis float64
	// Migrations counts schema changes that built at least one family,
	// initial installation included.
	Migrations int
	// FamiliesBuilt totals the column families built.
	FamiliesBuilt int
}

// TotalMillis is the cell's bottom line: workload plus migration time.
func (c DriftCell) TotalMillis() float64 {
	return c.WorkloadMillis + c.MigrationMillis
}

// DriftRow compares the two strategies at one drift rate.
type DriftRow struct {
	// Rate is the drift rate.
	Rate float64
	// Static is the advise-once baseline: one schema, advised on the
	// duration-weighted average of the phases, installed before phase 0
	// and never changed.
	Static DriftCell
	// Readvised is the AdviseSeries schedule: per-phase schemas with
	// mid-run migrations.
	Readvised DriftCell
}

// DriftResult is the full sweep.
type DriftResult struct {
	// Rows has one entry per drift rate, in Rates order.
	Rows []DriftRow
	// Phases and Executions echo the run shape (Executions is the
	// per-phase transaction budget).
	Phases     int
	Executions int
}

// driftWeights returns each transaction's normalized weight per phase:
// phase t blends browsing and write100 with α = rate·t/(phases−1), and
// each phase's weights are normalized to fractions so phases are
// comparable and execution counts follow directly.
func driftWeights(txns []*rubis.Transaction, rate float64, phases int) []map[string]float64 {
	out := make([]map[string]float64, phases)
	for t := 0; t < phases; t++ {
		alpha := rate * float64(t) / float64(phases-1)
		w := map[string]float64{}
		total := 0.0
		for _, txn := range txns {
			v := (1-alpha)*rubis.TransactionWeight(txn, rubis.MixBrowsing) +
				alpha*rubis.TransactionWeight(txn, rubis.MixWrite100)
			w[txn.Name] = v
			total += v
		}
		for name := range w {
			w[name] /= total
		}
		out[t] = w
	}
	return out
}

// driftPhases attaches the per-phase weights to the workload as phase
// overrides keyed by statement label.
func driftPhases(w *workload.Workload, txns []*rubis.Transaction, weights []map[string]float64) []*workload.Phase {
	var phases []*workload.Phase
	for t, pw := range weights {
		over := map[string]float64{}
		for _, txn := range txns {
			for _, st := range txn.Statements {
				over[workload.Label(st)] = pw[txn.Name]
			}
		}
		phases = append(phases, &workload.Phase{
			Name:      fmt.Sprintf("t%d", t),
			Overrides: over,
		})
	}
	return phases
}

// averageWorkload flattens the phases to their mean weights — the
// workload the advise-once baseline sees.
func averageWorkload(w *workload.Workload, txns []*rubis.Transaction, weights []map[string]float64) *workload.Workload {
	avgByTxn := map[string]float64{}
	for _, pw := range weights {
		for name, v := range pw {
			avgByTxn[name] += v / float64(len(weights))
		}
	}
	byLabel := map[string]float64{}
	for _, txn := range txns {
		for _, st := range txn.Statements {
			byLabel[workload.Label(st)] = avgByTxn[txn.Name]
		}
	}
	avg := workload.New(w.Graph)
	for _, ws := range w.Statements {
		avg.Statements = append(avg.Statements, &workload.WeightedStatement{
			Statement: ws.Statement,
			Weight:    byLabel[workload.Label(ws.Statement)],
		})
	}
	return avg
}

// RunDrift sweeps drift rates over RUBiS and measures advise-once
// versus re-advise-per-phase on total simulated cost, migration charges
// included. Everything is deterministic: the same config and seed
// reproduce the same table at any worker count. At rate 0 the workload
// never changes, so re-advising buys nothing and the series advisor
// should keep one schema; as the rate grows, the phase workloads pull
// apart and mid-run migrations start paying for themselves.
func RunDrift(cfg DriftConfig) (*DriftResult, error) {
	if cfg.Base.Executions <= 0 {
		cfg.Base.Executions = 60
	}
	if cfg.Phases < 2 {
		cfg.Phases = DefaultDriftPhases
	}
	rates := cfg.Rates
	if len(rates) == 0 {
		rates = DefaultDriftRates
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	migMeasured := cfg.Migration
	if migMeasured == (migrate.CostParams{}) {
		migMeasured = migrate.DefaultCostParams()
	}
	migAdvisor := migMeasured.Scale(1 / (float64(cfg.Phases) * float64(cfg.Base.Executions)))

	ds, err := rubis.Generate(cfg.Base.RUBiS)
	if err != nil {
		return nil, err
	}
	w, txns, err := rubis.Workload(ds.Graph)
	if err != nil {
		return nil, err
	}

	res := &DriftResult{Phases: cfg.Phases, Executions: cfg.Base.Executions}
	for _, rate := range rates {
		row, err := runDriftRate(cfg, ds, w, txns, rate, migMeasured, migAdvisor)
		if err != nil {
			return nil, fmt.Errorf("experiments: drift rate %g: %w", rate, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// runDriftRate measures one drift rate: advise both strategies, install
// both systems through the accounted migration path, then execute the
// same phased transaction schedule against each.
func runDriftRate(cfg DriftConfig, ds *backend.Dataset, w *workload.Workload, txns []*rubis.Transaction, rate float64, migMeasured, migAdvisor migrate.CostParams) (*DriftRow, error) {
	weights := driftWeights(txns, rate, cfg.Phases)

	phased := *w
	phased.Phases = driftPhases(w, txns, weights)
	avg := averageWorkload(w, txns, weights)

	advOpts := cfg.Base.Advisor
	if cfg.Base.Obs != nil {
		advOpts.Obs = cfg.Base.Obs
	}
	if cfg.Base.Trace != nil {
		advOpts.Trace = cfg.Base.Trace
	}
	staticRec, err := search.Advise(avg, advOpts)
	if err != nil {
		return nil, fmt.Errorf("static advise: %w", err)
	}
	seriesOpts := advOpts
	seriesOpts.Migration = migAdvisor
	series, err := search.AdviseSeries(&phased, seriesOpts)
	if err != nil {
		return nil, fmt.Errorf("series advise: %w", err)
	}

	// Both systems start empty and build their first schema through the
	// same accounted migration path, so initial installation is charged
	// on both sides of the comparison.
	lat := cost.DefaultParams()
	emptyRec := func() *search.Recommendation {
		return &search.Recommendation{Schema: schema.NewSchema()}
	}
	staticSys, err := harness.NewSystem("Static", ds, emptyRec(), lat)
	if err != nil {
		return nil, err
	}
	readvSys, err := harness.NewSystem("Readvised", ds, emptyRec(), lat)
	if err != nil {
		return nil, err
	}
	staticSys.EnableTrace(cfg.Base.Trace, 1, fmt.Sprintf("drift/%.2f/static", rate))
	readvSys.EnableTrace(cfg.Base.Trace, 2, fmt.Sprintf("drift/%.2f/readvised", rate))
	defer func() {
		cfg.Base.Obs.Merge(staticSys.Obs())
		cfg.Base.Obs.Merge(readvSys.Obs())
	}()

	row := &DriftRow{Rate: rate}
	record := func(cell *DriftCell, mres *migrate.Result) {
		cell.MigrationMillis += mres.SimMillis
		cell.FamiliesBuilt += len(mres.Built)
		if len(mres.Built) > 0 {
			cell.Migrations++
		}
	}
	mres, err := staticSys.Migrate(ds, &search.PhaseRecommendation{
		Rec:   staticRec,
		Build: staticRec.Schema.Indexes(),
	}, migMeasured)
	if err != nil {
		return nil, err
	}
	record(&row.Static, mres)

	for t := 0; t < cfg.Phases; t++ {
		mres, err := readvSys.Migrate(ds, series.Phases[t], migMeasured)
		if err != nil {
			return nil, err
		}
		record(&row.Readvised, mres)

		for ti, txn := range txns {
			n := int(math.Round(weights[t][txn.Name] * float64(cfg.Base.Executions)))
			if n <= 0 {
				continue
			}
			seed := cfg.Seed + int64(1000*t+ti)
			sms, err := runDriftTxn(staticSys, txn, n, cfg.Base.RUBiS, seed)
			if err != nil {
				return nil, err
			}
			row.Static.WorkloadMillis += sms
			rms, err := runDriftTxn(readvSys, txn, n, cfg.Base.RUBiS, seed)
			if err != nil {
				return nil, err
			}
			row.Readvised.WorkloadMillis += rms
		}
	}
	return row, nil
}

// runDriftTxn executes n instances of a transaction with a fresh,
// seeded parameter sequence — the same (seed, n) gives both systems
// identical parameters.
func runDriftTxn(sys *harness.System, txn *rubis.Transaction, n int, rc rubis.Config, seed int64) (float64, error) {
	ps := rubis.NewParamSource(rc, seed)
	total := 0.0
	for i := 0; i < n; i++ {
		ms, err := sys.ExecTransaction(txn.Statements, ps.Params(txn.Name))
		if err != nil {
			return total, fmt.Errorf("%s on %s: %w", txn.Name, sys.Name, err)
		}
		total += ms
	}
	return total, nil
}

// Format renders the sweep as a comparison table.
func (r *DriftResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "drift sweep: %d phases, %d transactions/phase\n", r.Phases, r.Executions)
	fmt.Fprintf(&b, "%-6s %12s %12s %12s %10s | %12s %12s %12s %10s %6s | %8s\n",
		"rate",
		"stat-work", "stat-mig", "stat-total", "stat-cf",
		"adv-work", "adv-mig", "adv-total", "adv-cf", "migs",
		"winner")
	for _, row := range r.Rows {
		winner := "static"
		if row.Readvised.TotalMillis() < row.Static.TotalMillis() {
			winner = "readvise"
		}
		fmt.Fprintf(&b, "%-6.2f %12.1f %12.1f %12.1f %10d | %12.1f %12.1f %12.1f %10d %6d | %8s\n",
			row.Rate,
			row.Static.WorkloadMillis, row.Static.MigrationMillis, row.Static.TotalMillis(), row.Static.FamiliesBuilt,
			row.Readvised.WorkloadMillis, row.Readvised.MigrationMillis, row.Readvised.TotalMillis(), row.Readvised.FamiliesBuilt,
			row.Readvised.Migrations, winner)
	}
	return b.String()
}
