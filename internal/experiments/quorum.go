package experiments

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"nose/internal/cost"
	"nose/internal/executor"
	"nose/internal/faults"
	"nose/internal/harness"
	"nose/internal/rubis"
)

// QuorumConfig parameterizes the availability/consistency sweep. The
// sweep reuses Fig. 11's dataset and workload mix, but installs the
// NoSE-recommended schema on a replicated cluster and measures, per
// (consistency level, node fault rate) cell, what consistency costs:
// tail latency, lost transactions, and stale reads.
type QuorumConfig struct {
	// Base configures the dataset, mix, executions and advisor exactly
	// as in Fig. 11.
	Base Fig11Config
	// Rates is the sweep of node fault rates (each split into
	// flaky/slow/down bands by faults.NodeRate); empty means
	// DefaultQuorumRates.
	Rates []float64
	// Levels are the consistency levels compared (used for both reads
	// and writes); empty means ONE, QUORUM, ALL.
	Levels []executor.Consistency
	// Nodes and RF shape the cluster; zero means the harness defaults
	// (5 nodes, RF 3).
	Nodes, RF int
	// Seed seeds the node fault domains; the same seed reproduces the
	// whole sweep bit for bit.
	Seed int64
	// Retry is the executor retry policy; the zero value means
	// executor.DefaultRetryPolicy().
	Retry executor.RetryPolicy
	// Hedge configures speculative reads; the zero value enables
	// hedging at the default delay.
	Hedge executor.HedgePolicy
}

// DefaultQuorumRates is the default node fault sweep, from a healthy
// cluster to one where a tenth of replica operations fault.
var DefaultQuorumRates = []float64{0, 0.02, 0.05, 0.1}

// DefaultQuorumLevels compares the three classic consistency levels.
var DefaultQuorumLevels = []executor.Consistency{executor.One, executor.Quorum, executor.All}

// QuorumCell is one (consistency level, node fault rate) measurement.
type QuorumCell struct {
	// P50Millis and P99Millis are latency percentiles over the
	// simulated response times of completed transactions.
	P50Millis, P99Millis float64
	// Completed and Unavailable partition the attempted transactions.
	Completed, Unavailable int64
	// UnavailableRate is Unavailable over all attempts.
	UnavailableRate float64
	// StaleReadRate is the coordinator's stale reads over its
	// coordinated reads.
	StaleReadRate float64
	// Report is the system's cumulative robustness ledger for this
	// cell, replication counters included.
	Report harness.RobustnessReport
}

// QuorumRow is one node fault rate's measurements across consistency
// levels, keyed by level name (ONE/QUORUM/ALL).
type QuorumRow struct {
	// Rate is the injected node fault rate.
	Rate float64
	// Cells maps consistency level name to its measurement.
	Cells map[string]QuorumCell
}

// QuorumResult is the full sweep.
type QuorumResult struct {
	// Levels orders the compared consistency levels.
	Levels []executor.Consistency
	// Nodes and RF record the cluster shape measured.
	Nodes, RF int
	// Rows has one entry per node fault rate, in Rates order.
	Rows []QuorumRow
}

// percentile returns the q-quantile of the values using the
// nearest-rank method — deterministic, no interpolation.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// RunQuorum sweeps node fault rates and consistency levels over the
// NoSE-recommended schema on a replicated cluster. It measures the
// availability/consistency trade the paper's target systems expose as
// a knob: ONE stays fast and available but serves stale reads while
// hinted handoff is pending; ALL never reads stale but goes unavailable
// the moment a replica set loses a node; QUORUM pays bounded extra
// latency for both. Everything is deterministic: the same config and
// seed reproduce the same result at any advisor worker count.
func RunQuorum(cfg QuorumConfig) (*QuorumResult, error) {
	if cfg.Base.Executions <= 0 {
		cfg.Base.Executions = 20
	}
	rates := cfg.Rates
	if len(rates) == 0 {
		rates = DefaultQuorumRates
	}
	levels := cfg.Levels
	if len(levels) == 0 {
		levels = DefaultQuorumLevels
	}
	retry := cfg.Retry
	if retry == (executor.RetryPolicy{}) {
		retry = executor.DefaultRetryPolicy()
	}
	hedge := cfg.Hedge
	if hedge == (executor.HedgePolicy{}) {
		hedge = executor.HedgePolicy{Enabled: true}
	}

	ds, txns, recs, err := buildRecommendations(cfg.Base)
	if err != nil {
		return nil, err
	}
	rec := recs["NoSE"]
	mix := cfg.Base.Mix
	if mix == "" {
		mix = rubis.MixBidding
	}

	repl := harness.ReplicationConfig{Nodes: cfg.Nodes, RF: cfg.RF}.Normalized()
	res := &QuorumResult{Levels: levels, Nodes: repl.Nodes, RF: repl.RF}
	// Each (rate, level) cell gets its own simulated-clock trace lane
	// and merges its private registry into the run registry when done.
	lane := 0
	for _, rate := range rates {
		row := QuorumRow{Rate: rate, Cells: map[string]QuorumCell{}}
		for _, level := range levels {
			// A fresh cluster per cell: each cell mutates its own
			// stores and fault streams, so cells never contaminate
			// each other and any one cell reproduces in isolation.
			rc := repl
			rc.Read, rc.Write, rc.Hedge = level, level, hedge
			sys, err := harness.NewReplicatedSystem("NoSE", ds, rec, cost.DefaultParams(), rc)
			if err != nil {
				return nil, err
			}
			sys.EnableNodeFaults(cfg.Seed, faults.NodeRate(rate), retry)
			lane++
			sys.EnableTrace(cfg.Base.Trace, lane, fmt.Sprintf("quorum rate=%g %s", rate, level))

			cell := QuorumCell{}
			var latencies []float64
			for _, txn := range txns {
				if rubis.TransactionWeight(txn, mix) <= 0 {
					continue
				}
				ps := rubis.NewParamSource(cfg.Base.RUBiS, 4242)
				for i := 0; i < cfg.Base.Executions; i++ {
					ms, err := sys.ExecTransaction(txn.Statements, ps.Params(txn.Name))
					switch {
					case err == nil:
						cell.Completed++
						latencies = append(latencies, ms)
					case errors.Is(err, harness.ErrUnavailable):
						// The degraded outcome under test: count it and
						// keep serving the rest of the workload.
						cell.Unavailable++
					default:
						return nil, fmt.Errorf("experiments: quorum %s rate %g: %s: %w",
							level, rate, txn.Name, err)
					}
				}
			}
			sort.Float64s(latencies)
			cell.P50Millis = percentile(latencies, 0.50)
			cell.P99Millis = percentile(latencies, 0.99)
			if n := cell.Completed + cell.Unavailable; n > 0 {
				cell.UnavailableRate = float64(cell.Unavailable) / float64(n)
			}
			cell.Report = sys.Robustness()
			cfg.Base.Obs.Merge(sys.Obs())
			if cell.Report.Replica.Reads > 0 {
				cell.StaleReadRate = float64(cell.Report.Replica.StaleReads) / float64(cell.Report.Replica.Reads)
			}
			row.Cells[level.String()] = cell
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the sweep as a data table: per node fault rate and
// consistency level, the latency percentiles of completed transactions,
// the share lost to unavailability, the stale-read rate, and the
// recovery work (hints, repairs, hedges) spent surviving.
func (r *QuorumResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d nodes, RF %d\n", r.Nodes, r.RF)
	fmt.Fprintf(&b, "%-8s %-8s %10s %10s %9s %8s %8s %8s %8s\n",
		"Rate", "Level", "p50(ms)", "p99(ms)", "Unavail", "Stale", "Hints", "Repairs", "Hedges")
	for _, row := range r.Rows {
		for _, level := range r.Levels {
			c := row.Cells[level.String()]
			fmt.Fprintf(&b, "%-8.3f %-8s %10.3f %10.3f %8.1f%% %7.2f%% %8d %8d %8d\n",
				row.Rate, level, c.P50Millis, c.P99Millis,
				100*c.UnavailableRate, 100*c.StaleReadRate,
				c.Report.Replica.HintsQueued, c.Report.Replica.ReadRepairs, c.Report.Replica.Hedges)
		}
	}
	return b.String()
}
