package experiments

import (
	"fmt"
	"strings"

	"nose/internal/hotel"
	"nose/internal/search"
	"nose/internal/workload"
)

// BudgetRow is one point of the storage-budget sweep: the estimated
// workload cost and schema size the advisor achieves under a budget.
type BudgetRow struct {
	// Fraction is the budget as a fraction of the unconstrained
	// schema's estimated size.
	Fraction float64
	// BudgetMB is the absolute budget.
	BudgetMB float64
	// CostRatio is the optimal workload cost relative to the
	// unconstrained optimum.
	CostRatio float64
	// Families is the number of recommended column families.
	Families int
	// UsedMB is the estimated size of the recommended schema.
	UsedMB float64
	// Infeasible records that no covering schema fits the budget —
	// possible because denormalized views can be smaller than the
	// normalized alternatives that would replace them.
	Infeasible bool
}

// BudgetResult is the storage-budget ablation: the paper (§III-D, §IX)
// highlights the space constraint as the knob applications use to
// trade normalization against query performance; this sweep charts
// that tradeoff.
type BudgetResult struct {
	// UnconstrainedMB is the schema size with no budget.
	UnconstrainedMB float64
	// Rows are the sweep points, decreasing budget.
	Rows []BudgetRow
}

// RunBudgetSweep advises the hotel booking workload (paper §II) under
// shrinking storage budgets. The hotel model makes the tradeoff vivid:
// its optimal materialized views span the whole reservation path and
// dwarf the narrow key-only families that replace them under pressure.
// (On RUBiS the unconstrained optimum is already the minimal covering
// schema, so its sweep is flat until infeasibility.)
func RunBudgetSweep(cfg Fig11Config, fractions []float64) (*BudgetResult, error) {
	if len(fractions) == 0 {
		fractions = []float64{1, 0.75, 0.5, 0.35, 0.25}
	}
	g := hotel.Graph()
	w := workload.New(g)
	w.Add(workload.MustParseQuery(g, hotel.ExampleQuery), 0.6)
	w.Add(workload.MustParseQuery(g, hotel.PrefixQuery), 0.3)
	w.Add(workload.MustParse(g, hotel.UpdateStatements[0]), 0.1)
	free, err := search.Advise(w, cfg.Advisor)
	if err != nil {
		return nil, err
	}
	res := &BudgetResult{UnconstrainedMB: free.Schema.TotalSizeBytes() / 1e6}
	for _, f := range fractions {
		opt := cfg.Advisor
		opt.SpaceBudgetBytes = free.Schema.TotalSizeBytes() * f
		rec, err := search.Advise(w, opt)
		if err != nil {
			res.Rows = append(res.Rows, BudgetRow{
				Fraction:   f,
				BudgetMB:   opt.SpaceBudgetBytes / 1e6,
				Infeasible: true,
			})
			continue
		}
		res.Rows = append(res.Rows, BudgetRow{
			Fraction:  f,
			BudgetMB:  opt.SpaceBudgetBytes / 1e6,
			CostRatio: rec.Cost / free.Cost,
			Families:  rec.Schema.Len(),
			UsedMB:    rec.Schema.TotalSizeBytes() / 1e6,
		})
	}
	return res, nil
}

// Format renders the sweep as a data table.
func (r *BudgetResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "unconstrained schema: %.1f MB\n", r.UnconstrainedMB)
	fmt.Fprintf(&b, "%-10s %12s %12s %10s %10s\n", "Budget", "Budget(MB)", "Cost ratio", "Families", "Used(MB)")
	for _, row := range r.Rows {
		if row.Infeasible {
			fmt.Fprintf(&b, "%9.0f%% %12.1f %34s\n", row.Fraction*100, row.BudgetMB, "no covering schema fits")
			continue
		}
		fmt.Fprintf(&b, "%9.0f%% %12.1f %12.3f %10d %10.1f\n",
			row.Fraction*100, row.BudgetMB, row.CostRatio, row.Families, row.UsedMB)
	}
	return b.String()
}
