// Package experiments regenerates the paper's evaluation figures
// (§VII): per-transaction response times under three schemas
// (Fig. 11), weighted response times across workload mixes (Fig. 12),
// and advisor runtime versus workload scale (Fig. 13). Absolute
// numbers come from the simulated record store, so the reproduction
// target is the shape of each figure — which schema wins where, and by
// roughly what factor — not the paper's absolute milliseconds.
package experiments

import (
	"fmt"
	"strings"

	"nose/internal/backend"
	"nose/internal/baselines"
	"nose/internal/cost"
	"nose/internal/harness"
	"nose/internal/obs"
	"nose/internal/planner"
	"nose/internal/rubis"
	"nose/internal/search"
)

// SystemNames orders the compared schemas as in paper Fig. 11.
var SystemNames = []string{"NoSE", "Normalized", "Expert"}

// Fig11Row is one transaction's average response time per system.
type Fig11Row struct {
	// Transaction is the RUBiS transaction type.
	Transaction string
	// Millis maps system name to average simulated response time.
	Millis map[string]float64
}

// Fig11Result is the regenerated Fig. 11 plus the paper's headline
// ratios from §VII-A.
type Fig11Result struct {
	// Rows has one entry per transaction type, in Fig. 11 order.
	Rows []Fig11Row
	// WeightedAvg is the mix-weighted average response time per
	// system.
	WeightedAvg map[string]float64
	// MaxSpeedupVsExpert is NoSE's best per-transaction ratio over the
	// expert schema (the paper reports up to 125x).
	MaxSpeedupVsExpert float64
	// WeightedSpeedupVsExpert is the weighted-average ratio (the paper
	// reports 1.8x).
	WeightedSpeedupVsExpert float64
}

// Fig11Config parameterizes the experiment.
type Fig11Config struct {
	// RUBiS scales the dataset.
	RUBiS rubis.Config
	// Executions is the number of measured executions per transaction
	// type (the paper used 1000).
	Executions int
	// Mix selects the workload mix; empty means bidding.
	Mix string
	// Advisor tunes the NoSE run.
	Advisor search.Options
	// Obs, when set, collects the run's metrics: the advisor's stage
	// counters directly, and each measured system's registry merged in
	// after its measurement. Deterministic counters in the merged
	// registry are bit-identical across reruns and worker counts.
	Obs *obs.Registry
	// Trace, when set, collects Chrome-trace events: advisor stages on
	// the wall-clock process and executed statements on per-system
	// simulated-clock lanes.
	Trace *obs.Tracer
}

// buildRecommendations generates the dataset and derives the three
// schemas' recommendations — the expensive, fault-independent half of
// system construction. Chaos sweeps reuse one set of recommendations
// across many fault rates.
func buildRecommendations(cfg Fig11Config) (*backend.Dataset, []*rubis.Transaction, map[string]*search.Recommendation, error) {
	ds, err := rubis.Generate(cfg.RUBiS)
	if err != nil {
		return nil, nil, nil, err
	}
	g := ds.Graph
	w, txns, err := rubis.Workload(g)
	if err != nil {
		return nil, nil, nil, err
	}
	if cfg.Mix != "" {
		w.ActiveMix = cfg.Mix
	}
	if cfg.Obs != nil {
		cfg.Advisor.Obs = cfg.Obs
	}
	if cfg.Trace != nil {
		cfg.Advisor.Trace = cfg.Trace
	}

	noseRec, err := search.Advise(w, cfg.Advisor)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("experiments: NoSE advise: %w", err)
	}
	normPool, err := baselines.Normalized(w)
	if err != nil {
		return nil, nil, nil, err
	}
	normRec, err := baselines.Recommend(w, normPool, cost.Default(), planner.DefaultConfig())
	if err != nil {
		return nil, nil, nil, err
	}
	expPool, err := baselines.ExpertRUBiS(g)
	if err != nil {
		return nil, nil, nil, err
	}
	expRec, err := baselines.Recommend(w, expPool, cost.Default(), planner.DefaultConfig())
	if err != nil {
		return nil, nil, nil, err
	}

	recs := map[string]*search.Recommendation{
		"NoSE": noseRec, "Normalized": normRec, "Expert": expRec,
	}
	return ds, txns, recs, nil
}

// installSystems loads each recommendation into a fresh store,
// returning the systems in SystemNames order. Fresh stores per call
// keep repeated runs (e.g. one per fault rate) independent of earlier
// runs' mutations.
func installSystems(ds *backend.Dataset, recs map[string]*search.Recommendation) ([]*harness.System, error) {
	var systems []*harness.System
	for _, name := range SystemNames {
		sys, err := harness.NewSystem(name, ds, recs[name], cost.DefaultParams())
		if err != nil {
			return nil, err
		}
		systems = append(systems, sys)
	}
	return systems, nil
}

// buildSystems generates the dataset once and installs the three
// schemas, returning them in SystemNames order.
func buildSystems(cfg Fig11Config) (*backend.Dataset, []*rubis.Transaction, []*harness.System, error) {
	ds, txns, recs, err := buildRecommendations(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	systems, err := installSystems(ds, recs)
	if err != nil {
		return nil, nil, nil, err
	}
	return ds, txns, systems, nil
}

// RunFig11 measures per-transaction average response times on the
// three schemas.
func RunFig11(cfg Fig11Config) (*Fig11Result, error) {
	if cfg.Executions <= 0 {
		cfg.Executions = 50
	}
	_, txns, systems, err := buildSystems(cfg)
	if err != nil {
		return nil, err
	}
	for i, sys := range systems {
		sys.EnableTrace(cfg.Trace, i+1, "fig11/"+sys.Name)
	}
	// Each system's registry merges into the run registry once its
	// measurement is done; addition commutes, so the totals are
	// independent of how the advisor split its work.
	defer func() {
		for _, sys := range systems {
			cfg.Obs.Merge(sys.Obs())
		}
	}()

	mix := cfg.Mix
	if mix == "" {
		mix = rubis.MixBidding
	}

	res := &Fig11Result{WeightedAvg: map[string]float64{}}
	totalsBySystem := map[string]float64{}
	weightSum := 0.0

	for _, txn := range txns {
		weight := rubis.TransactionWeight(txn, mix)
		if weight <= 0 {
			continue // not part of this mix; no plan exists for it
		}
		row := Fig11Row{Transaction: txn.Name, Millis: map[string]float64{}}
		// Identical parameter sequences per system keep the comparison
		// fair and the mutations identical.
		for _, sys := range systems {
			ps := rubis.NewParamSource(cfg.RUBiS, 4242)
			total := 0.0
			for i := 0; i < cfg.Executions; i++ {
				ms, err := sys.ExecTransaction(txn.Statements, ps.Params(txn.Name))
				if err != nil {
					return nil, fmt.Errorf("experiments: %s on %s: %w", txn.Name, sys.Name, err)
				}
				total += ms
			}
			row.Millis[sys.Name] = total / float64(cfg.Executions)
		}
		res.Rows = append(res.Rows, row)
		if weight > 0 {
			weightSum += weight
			for name, ms := range row.Millis {
				totalsBySystem[name] += weight * ms
			}
		}
	}
	for name, total := range totalsBySystem {
		res.WeightedAvg[name] = total / weightSum
	}

	for _, row := range res.Rows {
		if row.Millis["NoSE"] > 0 {
			if ratio := row.Millis["Expert"] / row.Millis["NoSE"]; ratio > res.MaxSpeedupVsExpert {
				res.MaxSpeedupVsExpert = ratio
			}
		}
	}
	if res.WeightedAvg["NoSE"] > 0 {
		res.WeightedSpeedupVsExpert = res.WeightedAvg["Expert"] / res.WeightedAvg["NoSE"]
	}
	return res, nil
}

// Format renders the result as the figure's data table.
func (r *Fig11Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %12s %12s\n", "Transaction", "NoSE(ms)", "Normalized", "Expert")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %12.3f %12.3f %12.3f\n",
			row.Transaction, row.Millis["NoSE"], row.Millis["Normalized"], row.Millis["Expert"])
	}
	fmt.Fprintf(&b, "%-24s %12.3f %12.3f %12.3f\n", "WeightedAverage",
		r.WeightedAvg["NoSE"], r.WeightedAvg["Normalized"], r.WeightedAvg["Expert"])
	fmt.Fprintf(&b, "max speedup vs expert: %.1fx; weighted speedup vs expert: %.2fx\n",
		r.MaxSpeedupVsExpert, r.WeightedSpeedupVsExpert)
	return b.String()
}
