package experiments

import (
	"fmt"
	"strings"

	"nose/internal/cost"
	"nose/internal/executor"
	"nose/internal/harness"
	"nose/internal/load"
	"nose/internal/rubis"
)

// LoadConfig parameterizes the latency-under-load sweep: the
// NoSE-recommended schema on a replicated cluster with per-node FIFO
// service queues, driven by a closed-loop client population swept from
// light load to saturation, per consistency level.
type LoadConfig struct {
	// Base configures the dataset, mix and advisor as in Fig. 11
	// (Executions is unused — the horizon bounds the run instead).
	Base Fig11Config
	// Levels are the consistency levels compared (used for both reads
	// and writes); empty means ONE, QUORUM, ALL.
	Levels []executor.Consistency
	// Clients is the swept closed-loop population sizes; empty means
	// DefaultLoadClients.
	Clients []int
	// Capacity is each node's parallel-server count; zero means
	// DefaultLoadCapacity.
	Capacity int
	// Nodes and RF shape the cluster; zero means the harness defaults.
	Nodes, RF int
	// Seed drives the load generator's think-time and mix draws; the
	// same seed is reused for every cell so cells differ only in load.
	Seed int64
	// ThinkMillis is the mean client think time; zero means
	// DefaultLoadThinkMillis.
	ThinkMillis float64
	// HorizonMillis is each cell's simulated duration; zero means
	// DefaultLoadHorizonMillis. The first tenth is warmup.
	HorizonMillis float64
}

// Default sweep shape: a population doubling from 1 to 64 against
// single-server nodes saturates the default 5-node cluster inside the
// sweep at every consistency level.
var DefaultLoadClients = []int{1, 2, 4, 8, 16, 32, 64}

const (
	// DefaultLoadCapacity is one server per node: the strictest FIFO
	// station, which makes the saturation knee land early enough for
	// CI-sized sweeps.
	DefaultLoadCapacity = 1
	// DefaultLoadThinkMillis is the closed-loop mean think time.
	DefaultLoadThinkMillis = 10
	// DefaultLoadHorizonMillis is each cell's simulated duration.
	DefaultLoadHorizonMillis = 2000
	// loadKneeP99Factor defines the saturation knee: the largest
	// population whose p99 stays within this factor of the lightest
	// load's p99. Past the knee, queueing makes p99 grow superlinearly
	// with offered load.
	loadKneeP99Factor = 3.0
)

// LoadCell is one (consistency level, client population) measurement.
type LoadCell struct {
	// Clients is the closed-loop population.
	Clients int
	// Started, Completed, Unavailable and Lost count transactions.
	Started, Completed, Unavailable, Lost int64
	// ThroughputPerSec is completed transactions per simulated second
	// in the measurement window.
	ThroughputPerSec float64
	// P50Millis and P99Millis are response-time percentiles, queue
	// delay included.
	P50Millis, P99Millis float64
	// QueueDelayMillis is the total simulated queue wait charged;
	// MaxUtilization is the busiest node's service utilization;
	// MaxDepth is the deepest queue observed on any node.
	QueueDelayMillis float64
	MaxUtilization   float64
	MaxDepth         int
}

// LoadCurve is one consistency level's throughput/latency curve plus
// its measured capacity: the saturation knee and peak throughput.
type LoadCurve struct {
	// Level is the read+write consistency level measured.
	Level executor.Consistency
	// Cells are the sweep points in Clients order.
	Cells []LoadCell
	// KneeClients is the largest population whose p99 stays within
	// loadKneeP99Factor of the lightest load's p99 — the capacity
	// operating point; KneeThroughputPerSec and KneeP99Millis are its
	// coordinates. Zero when even the lightest load is past the knee.
	KneeClients          int
	KneeThroughputPerSec float64
	KneeP99Millis        float64
	// SaturationPerSec is the peak throughput across the sweep.
	SaturationPerSec float64
}

// LoadResult is the full sweep.
type LoadResult struct {
	// Nodes, RF and Capacity record the cluster shape measured.
	Nodes, RF, Capacity int
	// ThinkMillis and HorizonMillis record the client shape.
	ThinkMillis, HorizonMillis float64
	// Curves has one entry per consistency level, in Levels order.
	Curves []LoadCurve
}

// RunLoad sweeps closed-loop client populations over the
// NoSE-recommended schema on a replicated cluster with per-node FIFO
// service queues, one curve per consistency level. Reads at ONE
// contact one replica and saturate latest; ALL fans every operation to
// the full replica set and hits the service-capacity wall soonest —
// the consistency knob priced in capacity, not just per-statement
// cost. Everything is deterministic: the same config and seed
// reproduce the same table bit for bit at any advisor worker count.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	levels := cfg.Levels
	if len(levels) == 0 {
		levels = DefaultQuorumLevels
	}
	clients := cfg.Clients
	if len(clients) == 0 {
		clients = DefaultLoadClients
	}
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultLoadCapacity
	}
	think := cfg.ThinkMillis
	if think <= 0 {
		think = DefaultLoadThinkMillis
	}
	horizon := cfg.HorizonMillis
	if horizon <= 0 {
		horizon = DefaultLoadHorizonMillis
	}

	ds, txns, recs, err := buildRecommendations(cfg.Base)
	if err != nil {
		return nil, err
	}
	rec := recs["NoSE"]
	mix := cfg.Base.Mix
	if mix == "" {
		mix = rubis.MixBidding
	}
	var work []load.Transaction
	for _, txn := range txns {
		work = append(work, load.Transaction{
			Name:       txn.Name,
			Statements: txn.Statements,
			Weight:     rubis.TransactionWeight(txn, mix),
		})
	}

	repl := harness.ReplicationConfig{Nodes: cfg.Nodes, RF: cfg.RF}.Normalized()
	res := &LoadResult{
		Nodes: repl.Nodes, RF: repl.RF, Capacity: capacity,
		ThinkMillis: think, HorizonMillis: horizon,
	}
	lane := 0
	for _, level := range levels {
		curve := LoadCurve{Level: level}
		for _, n := range clients {
			// A fresh cluster per cell: each cell mutates its own stores
			// and queues, so cells reproduce in isolation.
			rc := repl
			rc.Read, rc.Write = level, level
			sys, err := harness.NewReplicatedSystem("NoSE", ds, rec, cost.DefaultParams(), rc)
			if err != nil {
				return nil, err
			}
			q := sys.EnableQueues(capacity)
			lane++
			sys.EnableTrace(cfg.Base.Trace, lane, fmt.Sprintf("load %s clients=%d", level, n))

			ps := rubis.NewParamSource(cfg.Base.RUBiS, 4242)
			r, err := load.Run(sys, work, ps.Params, q, load.Options{
				Clients:       n,
				ThinkMillis:   think,
				HorizonMillis: horizon,
				WarmupMillis:  horizon / 10,
				Seed:          cfg.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: load %s clients=%d: %w", level, n, err)
			}
			cfg.Base.Obs.Merge(sys.Obs())
			curve.Cells = append(curve.Cells, LoadCell{
				Clients:          n,
				Started:          r.Started,
				Completed:        r.Completed,
				Unavailable:      r.Unavailable,
				Lost:             r.Lost,
				ThroughputPerSec: r.ThroughputPerSec,
				P50Millis:        r.P50Millis,
				P99Millis:        r.P99Millis,
				QueueDelayMillis: r.QueueDelayMillis,
				MaxUtilization:   r.MaxUtilization,
				MaxDepth:         r.MaxDepth,
			})
		}
		measureCapacity(&curve)
		res.Curves = append(res.Curves, curve)
	}
	return res, nil
}

// measureCapacity derives a curve's knee point and saturation
// throughput from its cells (assumed in increasing-population order).
func measureCapacity(c *LoadCurve) {
	if len(c.Cells) == 0 {
		return
	}
	base := c.Cells[0].P99Millis
	for _, cell := range c.Cells {
		if cell.ThroughputPerSec > c.SaturationPerSec {
			c.SaturationPerSec = cell.ThroughputPerSec
		}
		if base > 0 && cell.P99Millis <= loadKneeP99Factor*base {
			c.KneeClients = cell.Clients
			c.KneeThroughputPerSec = cell.ThroughputPerSec
			c.KneeP99Millis = cell.P99Millis
		}
	}
}

// Format renders the sweep: one throughput vs p50/p99 curve per
// consistency level, then the measured capacity table (knee point and
// saturation throughput per level).
func (r *LoadResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d nodes, RF %d, %d server(s)/node; closed loop, think %gms, horizon %gms\n",
		r.Nodes, r.RF, r.Capacity, r.ThinkMillis, r.HorizonMillis)
	for _, curve := range r.Curves {
		fmt.Fprintf(&b, "\n%s\n", curve.Level)
		fmt.Fprintf(&b, "%-8s %12s %10s %10s %12s %8s %7s\n",
			"Clients", "Tput(tx/s)", "p50(ms)", "p99(ms)", "QDelay(ms)", "MaxUtil", "Depth")
		for _, c := range curve.Cells {
			fmt.Fprintf(&b, "%-8d %12.1f %10.3f %10.3f %12.1f %7.0f%% %7d\n",
				c.Clients, c.ThroughputPerSec, c.P50Millis, c.P99Millis,
				c.QueueDelayMillis, 100*c.MaxUtilization, c.MaxDepth)
		}
	}
	fmt.Fprintf(&b, "\nCapacity — knee (p99 within %gx of light load) and saturation per level\n", loadKneeP99Factor)
	fmt.Fprintf(&b, "%-8s %14s %16s %12s %18s\n",
		"Level", "Knee(clients)", "KneeTput(tx/s)", "KneeP99(ms)", "Saturation(tx/s)")
	for _, curve := range r.Curves {
		fmt.Fprintf(&b, "%-8s %14d %16.1f %12.3f %18.1f\n",
			curve.Level, curve.KneeClients, curve.KneeThroughputPerSec,
			curve.KneeP99Millis, curve.SaturationPerSec)
	}
	return b.String()
}
