package experiments_test

import (
	"reflect"
	"strings"
	"testing"

	"nose/internal/experiments"
	"nose/internal/rubis"
)

func driftTestConfig(workers int) experiments.DriftConfig {
	opts := fastOptions()
	opts.Workers = workers
	return experiments.DriftConfig{
		Base: experiments.Fig11Config{
			RUBiS:      rubis.Config{Users: 200, Seed: 1},
			Executions: 10,
			Advisor:    opts,
		},
		Rates:  []float64{0, 1},
		Phases: 3,
		Seed:   7,
	}
}

// TestRunDriftDeterministicSweep: the drift sweep must be reproducible
// bit for bit from its config and seed, and byte-identical at any
// advisor worker count — the whole chain (series advisor, migrations,
// execution) is deterministic.
func TestRunDriftDeterministicSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	res, err := experiments.RunDrift(driftTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		for name, cell := range map[string]experiments.DriftCell{
			"static": row.Static, "readvised": row.Readvised,
		} {
			if cell.WorkloadMillis <= 0 {
				t.Errorf("rate %g %s: no workload time", row.Rate, name)
			}
			if cell.MigrationMillis <= 0 || cell.Migrations < 1 || cell.FamiliesBuilt < 1 {
				t.Errorf("rate %g %s: initial installation not charged: %+v", row.Rate, name, cell)
			}
			if cell.TotalMillis() != cell.WorkloadMillis+cell.MigrationMillis {
				t.Errorf("rate %g %s: total is not workload+migration", row.Rate, name)
			}
		}
	}

	// At rate 0 every phase is the same workload: re-advising must not
	// change the schema mid-run.
	if r0 := res.Rows[0]; r0.Readvised.Migrations > 1 {
		t.Errorf("rate 0: %d migrations, want only the initial installation", r0.Readvised.Migrations)
	}

	// Identical config and seed reproduce the sweep bit for bit.
	again, err := experiments.RunDrift(driftTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Error("same seed produced a different sweep")
	}

	// Worker count must not change a single bit of the table.
	wide, err := experiments.RunDrift(driftTestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, wide) {
		t.Errorf("worker count changed the sweep:\n%s\nvs\n%s", res.Format(), wide.Format())
	}

	out := res.Format()
	if !strings.Contains(out, "winner") || !strings.Contains(out, "3 phases") {
		t.Errorf("format output incomplete:\n%s", out)
	}
}
