package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"nose/internal/backend"
	"nose/internal/cost"
	"nose/internal/drift"
	"nose/internal/executor"
	"nose/internal/faults"
	"nose/internal/harness"
	"nose/internal/migrate"
	"nose/internal/rubis"
	"nose/internal/schema"
	"nose/internal/search"
	"nose/internal/workload"
)

// OnlineConfig parameterizes the online re-advising evaluation: the
// same drifting RUBiS timeline as RunDrift, but compared across three
// strategies that differ in what they are allowed to know and when
// they may change schema:
//
//   - once: advise on the phase-0 mix, never change. Knows only the
//     starting traffic — the honest lower bound for an online system.
//   - oracle: PR 5's AdviseSeries over the declared phases, migrating
//     stop-the-world at every phase boundary. Knows the whole future —
//     the upper bound no online detector can beat.
//   - online: advise on the phase-0 mix, then let a drift detector
//     watch the executed statement mix and, when it fires, re-advise
//     on the observed window mix and migrate in the background with
//     dual writes and bounded backfill chunks interleaved between
//     transactions.
//
// Each drift rate optionally runs twice: once on a plain store and
// once on a replicated cluster with node faults injected, so the live
// migration path is exercised under the weather it was built for.
type OnlineConfig struct {
	// Base configures the dataset, advisor, per-phase execution budget
	// (Executions transactions per phase), and observability exactly as
	// in Fig. 11. Base.Mix is ignored — the drift decides the mixes.
	Base Fig11Config
	// Rates is the sweep of drift rates in [0,1]; empty means
	// DefaultDriftRates.
	Rates []float64
	// Phases is the number of workload phases; minimum (and default)
	// DefaultDriftPhases.
	Phases int
	// Seed drives the transaction schedule shuffle, the parameter
	// sequences, and the fault streams; every strategy sees identical
	// sequences, so comparisons are paired.
	Seed int64
	// Migration prices column family builds; the zero value means
	// migrate.DefaultCostParams(). The oracle's advisor sees these
	// prices scaled exactly as in RunDrift.
	Migration migrate.CostParams
	// FaultRate is the node fault rate for each drift rate's faulted
	// row; 0 skips the faulted rows, negative means
	// DefaultOnlineFaultRate.
	FaultRate float64
	// Detector tunes the drift detector; the zero value takes the
	// drift package defaults.
	Detector drift.Config
	// FaultBudget is the live migration's abort budget per migration;
	// 0 means migrate.DefaultFaultBudget.
	FaultBudget int
	// PenaltyMillis is the SLA penalty charged per transaction lost to
	// unavailability — a query with no surviving plan under faults, or
	// no plan at all because the serving schema was never advised for
	// it. An unanswerable request is not free: the client waits out a
	// timeout and errors. Zero means DefaultOnlinePenaltyMillis;
	// negative disables the penalty.
	PenaltyMillis float64
}

// DefaultOnlineFaultRate is the node fault rate used for the faulted
// rows when the config asks for the default.
const DefaultOnlineFaultRate = 0.02

// DefaultOnlinePenaltyMillis is the default SLA penalty per lost
// transaction — a timeout-scale charge, an order of magnitude above a
// typical served transaction.
const DefaultOnlinePenaltyMillis = 10

// OnlineStrategies orders the compared strategies in every row.
var OnlineStrategies = []string{"once", "oracle", "online"}

// OnlineCell is one strategy's measured totals across one row's
// timeline.
type OnlineCell struct {
	// WorkloadMillis is the summed simulated response time of every
	// completed transaction.
	WorkloadMillis float64
	// MigrationMillis is the summed simulated time of schema changes:
	// initial installation, stop-the-world migrations (oracle), and
	// live backfill work including failed attempts (online).
	MigrationMillis float64
	// Migrations counts schema changes that built at least one family
	// and took effect (for online: reached cutover), initial
	// installation included.
	Migrations int
	// FamiliesBuilt totals the column families those migrations built.
	FamiliesBuilt int
	// Triggers counts drift-detector firings (online only).
	Triggers int
	// Aborts counts live migrations rolled back after exceeding their
	// fault budget (online only).
	Aborts int
	// Unavailable counts transactions lost: no surviving plan under
	// node faults (harness.ErrUnavailable) or no plan at all because
	// the serving schema was never advised for the statement
	// (harness.ErrNoPlan — the cost of serving drifted traffic on a
	// stale schema).
	Unavailable int64
	// PenaltyMillis is the SLA charge for those lost transactions.
	PenaltyMillis float64
}

// TotalMillis is the cell's bottom line: workload plus migration time
// plus the SLA penalties for lost transactions.
func (c OnlineCell) TotalMillis() float64 {
	return c.WorkloadMillis + c.MigrationMillis + c.PenaltyMillis
}

// OnlineRow compares the three strategies at one (drift rate, fault
// mode) point.
type OnlineRow struct {
	// Rate is the drift rate.
	Rate float64
	// Faulted reports whether this row ran on a replicated cluster
	// with node faults injected.
	Faulted bool
	// Cells maps strategy name (see OnlineStrategies) to its
	// measurement.
	Cells map[string]OnlineCell
}

// OnlineResult is the full sweep.
type OnlineResult struct {
	// Rows holds the clean row and, when faults are configured, the
	// faulted row for each drift rate, in Rates order.
	Rows []OnlineRow
	// Phases and Executions echo the run shape; FaultRate is the node
	// fault rate of the faulted rows (0 when they were skipped);
	// PenaltyMillis is the SLA charge per lost transaction.
	Phases        int
	Executions    int
	FaultRate     float64
	PenaltyMillis float64
}

// onlineSchedule builds the deterministic transaction schedule: per
// phase, each transaction gets its largest-remainder share of the
// execution budget, and the resulting instances are shuffled with a
// seeded generator so the statement stream interleaves transaction
// types the way live traffic does (block-ordered execution would feed
// the drift detector windows of a single statement type). The same
// schedule drives every strategy.
func onlineSchedule(txns []*rubis.Transaction, weights []map[string]float64, executions int, seed int64) [][]int {
	out := make([][]int, len(weights))
	for t, pw := range weights {
		counts := apportion(txns, pw, executions)
		var sched []int
		for ti, n := range counts {
			for i := 0; i < n; i++ {
				sched = append(sched, ti)
			}
		}
		rng := rand.New(rand.NewSource(seed + int64(t)))
		rng.Shuffle(len(sched), func(i, j int) { sched[i], sched[j] = sched[j], sched[i] })
		out[t] = sched
	}
	return out
}

// apportion distributes n executions across the transactions in
// proportion to their weights using the largest-remainder method, with
// index order breaking ties — fully deterministic.
func apportion(txns []*rubis.Transaction, w map[string]float64, n int) []int {
	counts := make([]int, len(txns))
	rem := make([]float64, len(txns))
	used := 0
	for ti, txn := range txns {
		exact := w[txn.Name] * float64(n)
		counts[ti] = int(exact)
		rem[ti] = exact - float64(counts[ti])
		used += counts[ti]
	}
	order := make([]int, len(txns))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rem[order[a]] > rem[order[b]] })
	for i := 0; used < n && i < len(order); i++ {
		counts[order[i]]++
		used++
	}
	return counts
}

// statementMix converts per-transaction weights to the normalized
// per-statement-label mix the executed traffic will show — each
// transaction instance executes all its statements once.
func statementMix(txns []*rubis.Transaction, w map[string]float64) map[string]float64 {
	mix := map[string]float64{}
	for _, txn := range txns {
		for _, st := range txn.Statements {
			mix[workload.Label(st)] += w[txn.Name]
		}
	}
	return drift.Normalize(mix)
}

// unionMix merges two normalized statement mixes by per-label maximum
// and re-normalizes. The online strategy re-advises on the union of
// the mix its serving schema covers and the observed window mix — a
// ratchet: a statement the system once served stays covered even when
// the latest window happens not to sample it, because a short window
// missing a known-live statement type is sampling noise, not evidence
// the application retired it. The price of the ratchet is honest too:
// views for traffic that genuinely went away are kept and maintained.
func unionMix(a, b map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if v > out[k] {
			out[k] = v
		}
	}
	return drift.Normalize(out)
}

// readviseWorkload builds the workload the online strategy re-advises
// on from a statement mix (the union of served and observed — see
// unionMix). The mix is lifted from statements to transactions first —
// a transaction's weight is the largest observed weight among its
// statements — and then expanded back to every statement of those
// transactions. The lift matters for honesty: a transaction that fails
// mid-way on a no-plan statement never executes its trailing
// statements, so the raw window mix under-represents exactly the
// statements the re-advice most needs to cover; the application,
// however, knows its transactions' full statement sets. Transactions
// the mix never saw get weight zero and are genuinely absent.
func readviseWorkload(w *workload.Workload, txns []*rubis.Transaction, mix map[string]float64) *workload.Workload {
	txw := map[string]float64{}
	for _, txn := range txns {
		for _, st := range txn.Statements {
			if v := mix[workload.Label(st)]; v > txw[txn.Name] {
				txw[txn.Name] = v
			}
		}
	}
	byLabel := statementMix(txns, txw)
	out := workload.New(w.Graph)
	for _, ws := range w.Statements {
		out.Statements = append(out.Statements, &workload.WeightedStatement{
			Statement: ws.Statement,
			Weight:    byLabel[workload.Label(ws.Statement)],
		})
	}
	return out
}

// RunOnline sweeps drift rates over RUBiS and measures advise-once,
// the phase oracle, and the online detector+live-migration loop on
// total simulated cost. Everything is deterministic: the same config
// and seed reproduce the same table at any advisor worker count, which
// is what the CI determinism smoke fingerprints. The expected shape:
// at rate 0 all three strategies tie (the detector never fires); as
// drift grows, online beats once by migrating toward the traffic it
// actually sees, and the oracle bounds online from below because it
// knows the timeline in advance and pays no detection lag.
func RunOnline(cfg OnlineConfig) (*OnlineResult, error) {
	if cfg.Base.Executions <= 0 {
		cfg.Base.Executions = 60
	}
	if cfg.Phases < 2 {
		cfg.Phases = DefaultDriftPhases
	}
	rates := cfg.Rates
	if len(rates) == 0 {
		rates = DefaultDriftRates
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	if cfg.FaultRate < 0 {
		cfg.FaultRate = DefaultOnlineFaultRate
	}
	if cfg.PenaltyMillis == 0 {
		cfg.PenaltyMillis = DefaultOnlinePenaltyMillis
	} else if cfg.PenaltyMillis < 0 {
		cfg.PenaltyMillis = 0
	}
	migMeasured := cfg.Migration
	if migMeasured == (migrate.CostParams{}) {
		migMeasured = migrate.DefaultCostParams()
	}
	migAdvisor := migMeasured.Scale(1 / (float64(cfg.Phases) * float64(cfg.Base.Executions)))

	ds, err := rubis.Generate(cfg.Base.RUBiS)
	if err != nil {
		return nil, err
	}
	w, txns, err := rubis.Workload(ds.Graph)
	if err != nil {
		return nil, err
	}

	res := &OnlineResult{
		Phases:        cfg.Phases,
		Executions:    cfg.Base.Executions,
		FaultRate:     cfg.FaultRate,
		PenaltyMillis: cfg.PenaltyMillis,
	}
	for _, rate := range rates {
		for _, faulted := range []bool{false, true} {
			if faulted && cfg.FaultRate == 0 {
				continue
			}
			row, err := runOnlineRate(cfg, onlineRun{
				ds: ds, w: w, txns: txns,
				rate: rate, faulted: faulted,
				migMeasured: migMeasured, migAdvisor: migAdvisor,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: online rate %g (faulted=%t): %w", rate, faulted, err)
			}
			res.Rows = append(res.Rows, *row)
		}
	}
	return res, nil
}

// onlineRun carries one row's shared inputs.
type onlineRun struct {
	ds                      *backend.Dataset
	w                       *workload.Workload
	txns                    []*rubis.Transaction
	rate                    float64
	faulted                 bool
	migMeasured, migAdvisor migrate.CostParams
}

// runOnlineRate measures one (drift rate, fault mode) row: advise the
// three strategies, then drive each through the identical shuffled
// transaction schedule.
func runOnlineRate(cfg OnlineConfig, run onlineRun) (*OnlineRow, error) {
	weights := driftWeights(run.txns, run.rate, cfg.Phases)
	schedule := onlineSchedule(run.txns, weights, cfg.Base.Executions, cfg.Seed)

	advOpts := cfg.Base.Advisor
	if cfg.Base.Obs != nil {
		advOpts.Obs = cfg.Base.Obs
	}
	if cfg.Base.Trace != nil {
		advOpts.Trace = cfg.Base.Trace
	}

	// once and online both start from the phase-0 advice: neither may
	// know the future, so statements with no phase-0 traffic are
	// absent and their views unbuilt — when drift brings them, they
	// are unanswerable (penalized) until a migration covers them. The
	// oracle sees the declared timeline.
	startRec, err := search.Advise(averageWorkload(run.w, run.txns, weights[:1]), advOpts)
	if err != nil {
		return nil, fmt.Errorf("phase-0 advise: %w", err)
	}
	phased := *run.w
	phased.Phases = driftPhases(run.w, run.txns, weights)
	seriesOpts := advOpts
	seriesOpts.Migration = run.migAdvisor
	series, err := search.AdviseSeries(&phased, seriesOpts)
	if err != nil {
		return nil, fmt.Errorf("series advise: %w", err)
	}

	row := &OnlineRow{Rate: run.rate, Faulted: run.faulted, Cells: map[string]OnlineCell{}}

	onceCell, err := runOnlineOnce(cfg, run, schedule, startRec)
	if err != nil {
		return nil, fmt.Errorf("once: %w", err)
	}
	row.Cells["once"] = *onceCell

	oracleCell, err := runOnlineOracle(cfg, run, schedule, series)
	if err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	row.Cells["oracle"] = *oracleCell

	onlineCell, err := runOnlineLive(cfg, run, schedule, weights, startRec, advOpts)
	if err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}
	row.Cells["online"] = *onlineCell
	return row, nil
}

// newOnlineSystem builds one strategy's system: empty schema (the
// initial installation is charged through the migration path), plain
// store for clean rows, replicated QUORUM cluster with node faults for
// faulted rows.
func newOnlineSystem(cfg OnlineConfig, run onlineRun, name string) (*harness.System, error) {
	empty := &search.Recommendation{Schema: schema.NewSchema()}
	lat := cost.DefaultParams()
	if !run.faulted {
		return harness.NewSystem(name, run.ds, empty, lat)
	}
	rc := harness.ReplicationConfig{
		Read:  executor.Quorum,
		Write: executor.Quorum,
		Hedge: executor.HedgePolicy{Enabled: true},
	}
	sys, err := harness.NewReplicatedSystem(name, run.ds, empty, lat, rc)
	if err != nil {
		return nil, err
	}
	sys.EnableNodeFaults(cfg.Seed, faults.NodeRate(cfg.FaultRate), executor.DefaultRetryPolicy())
	return sys, nil
}

// execPhase runs one phase of the schedule against a system: paired
// parameter sequences per transaction type, lost transactions (no
// surviving plan under faults, no plan at all on a stale schema)
// counted and penalized rather than fatal, and an optional between
// callback invoked after every transaction (the online strategy
// advances its background migration there).
func execPhase(cfg OnlineConfig, run onlineRun, sys *harness.System, cell *OnlineCell, t int, sched []int, between func() error) error {
	sources := make([]*rubis.ParamSource, len(run.txns))
	for ti := range run.txns {
		sources[ti] = rubis.NewParamSource(cfg.Base.RUBiS, cfg.Seed+int64(1000*t+ti))
	}
	for _, ti := range sched {
		txn := run.txns[ti]
		ms, err := sys.ExecTransaction(txn.Statements, sources[ti].Params(txn.Name))
		switch {
		case err == nil:
			cell.WorkloadMillis += ms
		case errors.Is(err, harness.ErrUnavailable), errors.Is(err, harness.ErrNoPlan):
			cell.Unavailable++
			cell.PenaltyMillis += cfg.PenaltyMillis
		default:
			return fmt.Errorf("%s on %s: %w", txn.Name, sys.Name, err)
		}
		if between != nil {
			if err := between(); err != nil {
				return err
			}
		}
	}
	return nil
}

// recordMigrate books a stop-the-world migration result into a cell.
func recordMigrate(cell *OnlineCell, res *migrate.Result) {
	cell.MigrationMillis += res.SimMillis
	cell.FamiliesBuilt += len(res.Built)
	if len(res.Built) > 0 {
		cell.Migrations++
	}
}

// runOnlineOnce measures the advise-once baseline: install the phase-0
// schema, never change it.
func runOnlineOnce(cfg OnlineConfig, run onlineRun, schedule [][]int, rec *search.Recommendation) (*OnlineCell, error) {
	sys, err := newOnlineSystem(cfg, run, "once")
	if err != nil {
		return nil, err
	}
	defer func() { cfg.Base.Obs.Merge(sys.Obs()) }()
	cell := &OnlineCell{}
	res, err := sys.Migrate(run.ds, &search.PhaseRecommendation{Rec: rec, Build: rec.Schema.Indexes()}, run.migMeasured)
	if err != nil {
		return nil, err
	}
	recordMigrate(cell, res)
	for t, sched := range schedule {
		if err := execPhase(cfg, run, sys, cell, t, sched, nil); err != nil {
			return nil, err
		}
	}
	return cell, nil
}

// runOnlineOracle measures the phase oracle: the AdviseSeries schedule
// with a stop-the-world migration at every phase boundary.
func runOnlineOracle(cfg OnlineConfig, run onlineRun, schedule [][]int, series *search.SeriesRecommendation) (*OnlineCell, error) {
	sys, err := newOnlineSystem(cfg, run, "oracle")
	if err != nil {
		return nil, err
	}
	defer func() { cfg.Base.Obs.Merge(sys.Obs()) }()
	cell := &OnlineCell{}
	for t, sched := range schedule {
		res, err := sys.Migrate(run.ds, series.Phases[t], run.migMeasured)
		if err != nil {
			return nil, err
		}
		recordMigrate(cell, res)
		if err := execPhase(cfg, run, sys, cell, t, sched, nil); err != nil {
			return nil, err
		}
	}
	return cell, nil
}

// onlineDrainSteps bounds the post-workload drain of a still-running
// live migration; hitting the bound is an error, not a truncation.
const onlineDrainSteps = 100_000

// runOnlineLive measures the online loop: start on the phase-0 schema,
// watch the executed mix, and on every drift trigger re-advise on the
// observed window mix and migrate live — dual writes forwarded,
// backfill interleaved one bounded chunk per transaction.
func runOnlineLive(cfg OnlineConfig, run onlineRun, schedule [][]int, weights []map[string]float64, startRec *search.Recommendation, advOpts search.Options) (*OnlineCell, error) {
	sys, err := newOnlineSystem(cfg, run, "online")
	if err != nil {
		return nil, err
	}
	defer func() { cfg.Base.Obs.Merge(sys.Obs()) }()
	cell := &OnlineCell{}

	res, err := sys.Migrate(run.ds, &search.PhaseRecommendation{Rec: startRec, Build: startRec.Schema.Indexes()}, run.migMeasured)
	if err != nil {
		return nil, err
	}
	recordMigrate(cell, res)

	// servingMix is the traffic mix the serving schema was advised for —
	// the detector's target; knownMix is the ratcheting union of every
	// mix the system has been advised on (see unionMix).
	servingMix := statementMix(run.txns, weights[0])
	knownMix := servingMix
	det := drift.New(cfg.Detector, servingMix)
	sys.EnableDrift(det)

	// pendingBuild is the family count of the in-flight live migration,
	// booked into the cell only if it reaches cutover.
	pendingBuild := 0
	var pendingMix map[string]float64

	liveStep := func() error {
		sr, err := sys.LiveStep()
		cell.MigrationMillis += sr.SimMillis
		switch {
		case errors.Is(err, migrate.ErrAborted):
			// Full rollback already happened inside the controller: the
			// old schema keeps serving. Point the detector back at the
			// mix that schema was advised for so sustained drift can
			// trigger another attempt after the cooldown.
			cell.Aborts++
			det.SetTarget(servingMix)
		case err != nil:
			return err
		case sr.State == migrate.StateCutover && sr.Transitioned:
			cell.Migrations++
			cell.FamiliesBuilt += pendingBuild
			servingMix = pendingMix
		}
		return nil
	}

	between := func() error {
		if sys.LiveActive() {
			return liveStep()
		}
		mix := sys.TakeDriftTrigger()
		if mix == nil {
			return nil
		}
		cell.Triggers++
		knownMix = unionMix(knownMix, mix)
		rec, err := search.Advise(readviseWorkload(run.w, run.txns, knownMix), advOpts)
		if err != nil {
			return fmt.Errorf("re-advise: %w", err)
		}
		build, drop := migrate.Diff(sys.Rec().Schema, rec.Schema)
		det.SetTarget(mix)
		if len(build) == 0 && len(drop) == 0 {
			// The observed mix does not change the schema: adopt the new
			// target and move on — no migration to run.
			servingMix = mix
			return nil
		}
		if _, err := sys.StartLiveMigration(run.ds, &search.PhaseRecommendation{Rec: rec, Build: build, Drop: drop},
			migrate.LiveOptions{Params: run.migMeasured, FaultBudget: cfg.FaultBudget}); err != nil {
			return err
		}
		pendingBuild = len(build)
		pendingMix = mix
		return nil
	}

	for t, sched := range schedule {
		if err := execPhase(cfg, run, sys, cell, t, sched, between); err != nil {
			return nil, err
		}
	}
	// The workload is over; let an in-flight migration finish (or
	// abort) so its full cost lands in the cell.
	for i := 0; sys.LiveActive(); i++ {
		if i >= onlineDrainSteps {
			return nil, fmt.Errorf("live migration not finished after %d drain steps", onlineDrainSteps)
		}
		if err := liveStep(); err != nil {
			return nil, err
		}
	}
	return cell, nil
}

// Format renders the sweep as a comparison table; its exact bytes are
// the determinism fingerprint the CI smoke compares across worker
// counts.
func (r *OnlineResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "online sweep: %d phases, %d transactions/phase, node fault rate %g, %g ms penalty per lost transaction\n",
		r.Phases, r.Executions, r.FaultRate, r.PenaltyMillis)
	fmt.Fprintf(&b, "%-6s %-7s | %11s %6s | %11s %6s | %11s %9s %6s %5s %6s | %7s\n",
		"rate", "faults",
		"once-total", "lost",
		"orcl-total", "lost",
		"onln-total", "onln-mig", "lost", "trig", "abort",
		"winner")
	for _, row := range r.Rows {
		once, oracle, online := row.Cells["once"], row.Cells["oracle"], row.Cells["online"]
		winner := "once"
		best := once.TotalMillis()
		if oracle.TotalMillis() < best {
			winner, best = "oracle", oracle.TotalMillis()
		}
		if online.TotalMillis() < best {
			winner = "online"
		}
		mode := "off"
		if row.Faulted {
			mode = "on"
		}
		fmt.Fprintf(&b, "%-6.2f %-7s | %11.1f %6d | %11.1f %6d | %11.1f %9.1f %6d %5d %6d | %7s\n",
			row.Rate, mode,
			once.TotalMillis(), once.Unavailable,
			oracle.TotalMillis(), oracle.Unavailable,
			online.TotalMillis(), online.MigrationMillis, online.Unavailable,
			online.Triggers, online.Aborts,
			winner)
	}
	return b.String()
}
