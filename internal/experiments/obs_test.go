package experiments_test

import (
	"testing"

	"nose/internal/experiments"
	"nose/internal/obs"
	"nose/internal/rubis"
)

// quorumSnapshot runs the quorum sweep (RUBiS advise + executed
// workload under node faults) with a metrics registry attached and
// returns the snapshot.
func quorumSnapshot(t *testing.T, workers int) *obs.Snapshot {
	t.Helper()
	reg := obs.NewRegistry()
	adv := fastOptions()
	adv.Workers = workers
	_, err := experiments.RunQuorum(experiments.QuorumConfig{
		Base: experiments.Fig11Config{
			RUBiS:      rubis.Config{Users: 200, Seed: 1},
			Executions: 2,
			Advisor:    adv,
			Obs:        reg,
		},
		Rates: []float64{0, 0.05},
		Seed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg.Snapshot()
}

// TestMetricsDeterministicAcrossWorkers is the observability layer's
// core contract: the deterministic sections of the metrics snapshot —
// every counter and every histogram bucket count — are bit-identical
// across advisor worker counts and across same-seed reruns. Volatile
// counters (cache hit/miss races) and gauges (wall-clock timings) are
// exempt; DeterministicFingerprint covers exactly the guaranteed part.
func TestMetricsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	base := quorumSnapshot(t, 1)
	fp := base.DeterministicFingerprint()
	if fp == "" {
		t.Fatal("empty fingerprint")
	}
	for _, workers := range []int{4, 8} {
		snap := quorumSnapshot(t, workers)
		if got := snap.DeterministicFingerprint(); got != fp {
			t.Errorf("workers=%d changed the deterministic metrics:\nworkers=1: %s\nworkers=%d: %s",
				workers, fp, workers, got)
		}
	}
	// Same seed, same worker count: a rerun in the same process (fresh
	// stores, fresh fault streams) reproduces the snapshot too.
	again := quorumSnapshot(t, 1)
	if got := again.DeterministicFingerprint(); got != fp {
		t.Errorf("same-seed rerun changed the deterministic metrics:\n%s\nvs\n%s", fp, got)
	}

	// The run actually flowed through every layer: advisor, solver,
	// harness, coordinator, node stores, and fault domains all counted.
	for _, name := range []string{
		"enum.candidates_unique", "search.candidates", "bip.nodes", "lp.pivots",
		"harness.statements", "coord.reads", "store.gets", "nodefaults.ops",
		"exec.queries",
	} {
		if base.Counters[name] == 0 {
			t.Errorf("counter %s = 0; layer not instrumented in this run", name)
		}
	}
	if base.Histograms["harness.statement.sim_ms"].Count == 0 {
		t.Error("statement latency histogram empty")
	}
}
