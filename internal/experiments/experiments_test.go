package experiments_test

import (
	"strings"
	"testing"

	"nose/internal/bip"
	"nose/internal/experiments"
	"nose/internal/planner"
	"nose/internal/rubis"
	"nose/internal/search"
)

func fastOptions() search.Options {
	return search.Options{
		Planner:            planner.Config{MaxPlansPerQuery: 12},
		MaxSupportPlans:    4,
		BIP:                bip.Options{MaxNodes: 30, Gap: 0.05},
		SkipMinimizeSchema: true,
	}
}

func TestRunFig11TinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	res, err := experiments.RunFig11(experiments.Fig11Config{
		RUBiS:      rubis.Config{Users: 200, Seed: 1},
		Executions: 3,
		Advisor:    fastOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, name := range experiments.SystemNames {
			if row.Millis[name] < 0 {
				t.Errorf("%s/%s negative", row.Transaction, name)
			}
		}
	}
	for _, name := range experiments.SystemNames {
		if res.WeightedAvg[name] <= 0 {
			t.Errorf("weighted avg for %s = %v", name, res.WeightedAvg[name])
		}
	}
	out := res.Format()
	if !strings.Contains(out, "SearchItemsByCategory") || !strings.Contains(out, "WeightedAverage") {
		t.Errorf("format output incomplete:\n%s", out)
	}
	// Shape check: NoSE should not lose the weighted average to the
	// normalized schema on the bidding mix.
	if res.WeightedAvg["NoSE"] > res.WeightedAvg["Normalized"] {
		t.Errorf("NoSE (%.3f) slower than normalized (%.3f) on bidding mix",
			res.WeightedAvg["NoSE"], res.WeightedAvg["Normalized"])
	}
}

func TestRunFig13SmallFactors(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	res, err := experiments.RunFig13(experiments.Fig13Config{
		MaxFactor: 2,
		Seed:      5,
		Advisor:   fastOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Total <= 0 {
			t.Errorf("factor %d: zero total", row.Factor)
		}
		if row.Candidates <= 0 || row.Constraints <= 0 {
			t.Errorf("factor %d: missing stats", row.Factor)
		}
	}
	// The workload doubles; the problem must grow.
	if res.Rows[1].Candidates <= res.Rows[0].Candidates {
		t.Error("candidates did not grow with the scale factor")
	}
	if !strings.Contains(res.Format(), "Factor") {
		t.Error("format output incomplete")
	}
}
