package experiments_test

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"nose/internal/bip"
	"nose/internal/experiments"
	"nose/internal/planner"
	"nose/internal/rubis"
	"nose/internal/search"
)

func fastOptions() search.Options {
	return search.Options{
		Planner:            planner.Config{MaxPlansPerQuery: 12},
		MaxSupportPlans:    4,
		BIP:                bip.Options{MaxNodes: 30, Gap: 0.05},
		SkipMinimizeSchema: true,
	}
}

func TestRunFig11TinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	res, err := experiments.RunFig11(experiments.Fig11Config{
		RUBiS:      rubis.Config{Users: 200, Seed: 1},
		Executions: 3,
		Advisor:    fastOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, name := range experiments.SystemNames {
			if row.Millis[name] < 0 {
				t.Errorf("%s/%s negative", row.Transaction, name)
			}
		}
	}
	for _, name := range experiments.SystemNames {
		if res.WeightedAvg[name] <= 0 {
			t.Errorf("weighted avg for %s = %v", name, res.WeightedAvg[name])
		}
	}
	out := res.Format()
	if !strings.Contains(out, "SearchItemsByCategory") || !strings.Contains(out, "WeightedAverage") {
		t.Errorf("format output incomplete:\n%s", out)
	}
	// Shape check: NoSE should not lose the weighted average to the
	// normalized schema on the bidding mix.
	if res.WeightedAvg["NoSE"] > res.WeightedAvg["Normalized"] {
		t.Errorf("NoSE (%.3f) slower than normalized (%.3f) on bidding mix",
			res.WeightedAvg["NoSE"], res.WeightedAvg["Normalized"])
	}
}

func TestRunChaosDeterministicSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	cfg := experiments.ChaosConfig{
		Base: experiments.Fig11Config{
			RUBiS:      rubis.Config{Users: 200, Seed: 1},
			Executions: 3,
			Advisor:    fastOptions(),
		},
		Rates: []float64{0, 0.02},
		Seed:  7,
	}
	res, err := experiments.RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}

	// Rate 0 must be indistinguishable from the unfaulted harness: no
	// retries, no failovers, nothing injected, nothing lost.
	healthy := res.Rows[0]
	for _, name := range experiments.SystemNames {
		c := healthy.Cells[name]
		if c.Unavailable != 0 || c.Report.Retries != 0 || c.Report.Failovers != 0 ||
			c.Report.Injected.Ops != 0 {
			t.Errorf("rate 0 on %s not clean: %+v", name, c.Report)
		}
		if c.Completed == 0 || c.AvgMillis <= 0 {
			t.Errorf("rate 0 on %s completed nothing", name)
		}
	}

	// At a nonzero rate the injector must have fired and the systems
	// must have paid for it (retries or failovers or losses).
	faulted := res.Rows[1]
	for _, name := range experiments.SystemNames {
		c := faulted.Cells[name]
		if c.Report.Injected.Ops == 0 {
			t.Errorf("rate 0.02 on %s: injector saw no operations", name)
		}
		work := c.Report.Retries + c.Report.Failovers + c.Unavailable
		if c.Report.Injected.Transients+c.Report.Injected.Timeouts+c.Report.Injected.Unavailables > 0 && work == 0 {
			t.Errorf("rate 0.02 on %s: faults injected but no degradation recorded: %+v", name, c.Report)
		}
	}

	// Identical config and seed must reproduce the sweep bit for bit.
	again, err := experiments.RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Error("same seed produced a different sweep")
	}

	out := res.Format()
	if !strings.Contains(out, "Unavailable") || !strings.Contains(out, "NoSE") {
		t.Errorf("format output incomplete:\n%s", out)
	}
}

// TestChaosRateZeroMatchesFig11 cross-checks the two experiment paths:
// with no faults enabled, the chaos sweep's average response time must
// equal the mean of Fig. 11's per-transaction averages (they execute
// the exact same statement sequence).
func TestChaosRateZeroMatchesFig11(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	base := experiments.Fig11Config{
		RUBiS:      rubis.Config{Users: 200, Seed: 1},
		Executions: 3,
		Advisor:    fastOptions(),
	}
	chaos, err := experiments.RunChaos(experiments.ChaosConfig{Base: base, Rates: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	fig11, err := experiments.RunFig11(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range experiments.SystemNames {
		mean := 0.0
		for _, row := range fig11.Rows {
			mean += row.Millis[name]
		}
		mean /= float64(len(fig11.Rows))
		got := chaos.Rows[0].Cells[name].AvgMillis
		if math.Abs(got-mean) > 1e-9*math.Max(1, mean) {
			t.Errorf("%s: chaos rate-0 avg %.9f != fig11 mean %.9f", name, got, mean)
		}
	}
}

func TestRunFig13SmallFactors(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	res, err := experiments.RunFig13(experiments.Fig13Config{
		MaxFactor: 2,
		Seed:      5,
		Advisor:   fastOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Total <= 0 {
			t.Errorf("factor %d: zero total", row.Factor)
		}
		if row.Candidates <= 0 || row.Constraints <= 0 {
			t.Errorf("factor %d: missing stats", row.Factor)
		}
	}
	// The workload doubles; the problem must grow.
	if res.Rows[1].Candidates <= res.Rows[0].Candidates {
		t.Error("candidates did not grow with the scale factor")
	}
	if !strings.Contains(res.Format(), "Factor") {
		t.Error("format output incomplete")
	}
}

// TestRunQuorumDeterministicSweep drives the availability/consistency
// sweep at tiny scale and pins its contract: identical config and seed
// reproduce the result bit for bit (at any advisor worker count), ALL
// goes unavailable under node faults no more rarely than QUORUM loses
// data freshness, and a healthy cluster serves every level cleanly.
func TestRunQuorumDeterministicSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	cfg := experiments.QuorumConfig{
		Base: experiments.Fig11Config{
			RUBiS:      rubis.Config{Users: 200, Seed: 1},
			Executions: 3,
			Advisor:    fastOptions(),
		},
		Rates: []float64{0, 0.05},
		Seed:  7,
	}
	res, err := experiments.RunQuorum(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Nodes != 5 || res.RF != 3 {
		t.Fatalf("cluster shape %d/%d, want default 5 nodes RF 3", res.Nodes, res.RF)
	}

	// Rate 0: every consistency level completes everything, nothing is
	// stale, nothing is unavailable.
	for _, level := range res.Levels {
		c := res.Rows[0].Cells[level.String()]
		if c.Completed == 0 || c.Unavailable != 0 {
			t.Errorf("rate 0 at %v: completed=%d unavailable=%d", level, c.Completed, c.Unavailable)
		}
		if c.StaleReadRate != 0 {
			t.Errorf("rate 0 at %v: stale read rate %v", level, c.StaleReadRate)
		}
		if c.P50Millis <= 0 || c.P99Millis < c.P50Millis {
			t.Errorf("rate 0 at %v: bad percentiles p50=%v p99=%v", level, c.P50Millis, c.P99Millis)
		}
	}

	// Under node faults the coordinator must have fanned out to
	// replicas and paid for the weather somewhere.
	for _, level := range res.Levels {
		c := res.Rows[1].Cells[level.String()]
		if c.Report.Replica.ReplicaReads == 0 || c.Report.NodeFaults.Ops == 0 {
			t.Errorf("rate 0.05 at %v: replica/node counters empty: %+v", level, c.Report)
		}
	}

	// Identical config and seed reproduce the sweep bit for bit.
	again, err := experiments.RunQuorum(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Error("same seed produced a different quorum sweep")
	}

	// ... and the advisor worker count must not leak into the result.
	workers := cfg
	workers.Base.Advisor.Workers = 2
	cfg.Base.Advisor.Workers = 1
	one, err := experiments.RunQuorum(cfg)
	if err != nil {
		t.Fatal(err)
	}
	two, err := experiments.RunQuorum(workers)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, two) {
		t.Error("advisor worker count changed the quorum sweep")
	}

	out := res.Format()
	for _, want := range []string{"cluster: 5 nodes, RF 3", "ONE", "QUORUM", "ALL", "p99(ms)", "Stale"} {
		if !strings.Contains(out, want) {
			t.Errorf("format output missing %q:\n%s", want, out)
		}
	}
}
