package experiments_test

import (
	"strings"
	"testing"

	"nose/internal/experiments"
	"nose/internal/rubis"
)

func loadTestConfig(workers int) experiments.LoadConfig {
	opts := fastOptions()
	opts.Workers = workers
	return experiments.LoadConfig{
		Base: experiments.Fig11Config{
			RUBiS:   rubis.Config{Users: 300, Seed: 1},
			Advisor: opts,
		},
		Clients:       []int{1, 4, 16},
		Seed:          7,
		HorizonMillis: 300,
	}
}

// TestRunLoadDeterministicSweep: the load sweep must reproduce bit for
// bit from its config and seed, and be byte-identical at any advisor
// worker count — its Format output is the fingerprint the CI
// determinism smoke compares. The sweep must also show the queueing
// shape: tail latency grows with the client population on every curve.
func TestRunLoadDeterministicSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	w1, err := experiments.RunLoad(loadTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	w4, err := experiments.RunLoad(loadTestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	f1, f4 := w1.Format(), w4.Format()
	if f1 != f4 {
		t.Fatalf("load sweep differs across worker counts:\nworkers=1:\n%s\nworkers=4:\n%s", f1, f4)
	}
	if !strings.Contains(f1, "Capacity — knee") {
		t.Fatalf("format missing capacity table:\n%s", f1)
	}

	if len(w1.Curves) != len(experiments.DefaultQuorumLevels) {
		t.Fatalf("got %d curves, want one per level", len(w1.Curves))
	}
	for _, curve := range w1.Curves {
		if len(curve.Cells) != 3 {
			t.Fatalf("%s: %d cells, want 3", curve.Level, len(curve.Cells))
		}
		first, last := curve.Cells[0], curve.Cells[len(curve.Cells)-1]
		if first.Completed == 0 || last.Completed == 0 {
			t.Errorf("%s: empty cells: %+v", curve.Level, curve.Cells)
		}
		if last.P99Millis <= first.P99Millis {
			t.Errorf("%s: p99 flat under load: %.3fms at %d clients vs %.3fms at %d",
				curve.Level, first.P99Millis, first.Clients, last.P99Millis, last.Clients)
		}
		if last.QueueDelayMillis <= 0 {
			t.Errorf("%s: no queue delay at %d clients", curve.Level, last.Clients)
		}
		if curve.SaturationPerSec <= 0 {
			t.Errorf("%s: no saturation throughput measured", curve.Level)
		}
	}
}
