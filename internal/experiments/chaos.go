package experiments

import (
	"errors"
	"fmt"
	"strings"

	"nose/internal/executor"
	"nose/internal/faults"
	"nose/internal/harness"
	"nose/internal/rubis"
)

// ChaosConfig parameterizes the fault-rate sweep. The sweep reuses
// Fig. 11's dataset, workload mix, and three compared schemas, but runs
// every transaction through a fault-injected store and reports
// robustness instead of raw response time.
type ChaosConfig struct {
	// Base configures the dataset, mix, executions and advisor exactly
	// as in Fig. 11.
	Base Fig11Config
	// Rates is the sweep of overall fault rates (each split into
	// transient/timeout/unavailable bands by faults.Rate); empty means
	// DefaultChaosRates.
	Rates []float64
	// Seed seeds the fault injectors; the same seed reproduces the
	// whole sweep bit for bit.
	Seed int64
	// Retry is the executor retry policy; the zero value means
	// executor.DefaultRetryPolicy().
	Retry executor.RetryPolicy
}

// DefaultChaosRates is the default fault-rate sweep, from a healthy
// store to one where a twentieth of operations fault.
var DefaultChaosRates = []float64{0, 0.005, 0.02, 0.05}

// ChaosCell is one (system, fault rate) measurement.
type ChaosCell struct {
	// AvgMillis is the average simulated response time of the
	// transactions that completed, retries and failovers included.
	AvgMillis float64
	// Completed and Unavailable partition the attempted transactions:
	// Unavailable counts those abandoned because some statement had no
	// surviving plan.
	Completed   int64
	Unavailable int64
	// Report is the system's cumulative robustness ledger for this
	// rate.
	Report harness.RobustnessReport
}

// ChaosRow is one fault rate's measurements across the systems.
type ChaosRow struct {
	// Rate is the overall injected fault rate.
	Rate float64
	// Cells maps system name to its measurement.
	Cells map[string]ChaosCell
}

// ChaosResult is the full sweep.
type ChaosResult struct {
	// Rows has one entry per fault rate, in Rates order.
	Rows []ChaosRow
}

// RunChaos sweeps fault rates over the three schemas of Fig. 11 and
// measures how gracefully each degrades: transactions that complete
// despite faults (slower, via retries and plan failover) versus
// transactions lost to ErrUnavailable. Index-redundant schemas keep
// alternative plans alive and should lose fewer transactions than the
// minimal ones. Everything is deterministic: the same config and seed
// reproduce the same result, and rate 0 executes the exact unfaulted
// harness path.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	if cfg.Base.Executions <= 0 {
		cfg.Base.Executions = 20
	}
	rates := cfg.Rates
	if len(rates) == 0 {
		rates = DefaultChaosRates
	}
	retry := cfg.Retry
	if retry == (executor.RetryPolicy{}) {
		retry = executor.DefaultRetryPolicy()
	}

	ds, txns, recs, err := buildRecommendations(cfg.Base)
	if err != nil {
		return nil, err
	}
	mix := cfg.Base.Mix
	if mix == "" {
		mix = rubis.MixBidding
	}

	res := &ChaosResult{}
	// Each (rate, system) cell gets its own simulated-clock trace lane
	// and merges its private registry into the run registry when done.
	lane := 0
	for _, rate := range rates {
		// Fresh systems per rate: each rate mutates its own stores, so
		// rates never contaminate each other and any single rate can be
		// reproduced in isolation.
		systems, err := installSystems(ds, recs)
		if err != nil {
			return nil, err
		}
		row := ChaosRow{Rate: rate, Cells: map[string]ChaosCell{}}
		for _, sys := range systems {
			if rate > 0 {
				sys.EnableFaults(cfg.Seed, faults.Rate(rate), retry)
			}
			lane++
			sys.EnableTrace(cfg.Base.Trace, lane, fmt.Sprintf("chaos rate=%g %s", rate, sys.Name))
			cell := ChaosCell{}
			totalMillis := 0.0
			for _, txn := range txns {
				if rubis.TransactionWeight(txn, mix) <= 0 {
					continue
				}
				ps := rubis.NewParamSource(cfg.Base.RUBiS, 4242)
				for i := 0; i < cfg.Base.Executions; i++ {
					ms, err := sys.ExecTransaction(txn.Statements, ps.Params(txn.Name))
					switch {
					case err == nil:
						cell.Completed++
						totalMillis += ms
					case errors.Is(err, harness.ErrUnavailable):
						// The degraded outcome under test: count it and
						// keep serving the rest of the workload.
						cell.Unavailable++
					default:
						return nil, fmt.Errorf("experiments: chaos %s rate %g: %s: %w",
							sys.Name, rate, txn.Name, err)
					}
				}
			}
			if cell.Completed > 0 {
				cell.AvgMillis = totalMillis / float64(cell.Completed)
			}
			cell.Report = sys.Robustness()
			cfg.Base.Obs.Merge(sys.Obs())
			row.Cells[sys.Name] = cell
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the sweep as a data table: per rate and system, the
// average response time of completed transactions, the count lost to
// unavailability, and the retry/failover work spent surviving.
func (r *ChaosResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-12s %12s %10s %12s %10s %10s\n",
		"Rate", "System", "Avg(ms)", "Completed", "Unavailable", "Retries", "Failovers")
	for _, row := range r.Rows {
		for _, name := range SystemNames {
			c := row.Cells[name]
			fmt.Fprintf(&b, "%-8.3f %-12s %12.3f %10d %12d %10d %10d\n",
				row.Rate, name, c.AvgMillis, c.Completed, c.Unavailable,
				c.Report.Retries, c.Report.Failovers)
		}
	}
	return b.String()
}
