package experiments_test

import (
	"reflect"
	"strings"
	"testing"

	"nose/internal/experiments"
)

func crashChaosTestConfig(workers int) experiments.CrashChaosConfig {
	opts := fastOptions()
	opts.Workers = workers
	return experiments.CrashChaosConfig{
		Seed:    7,
		Advisor: opts,
	}
}

// TestRunCrashChaosDeterministicSweep: the crash chaos sweep — one
// migration crashed at every journal append index per (consistency
// level, fault rate) cell, plus coordinator handoff/read-repair
// crash-restarts — must recover every run to a verifier-clean state,
// reproduce bit for bit from its config and seed, and be byte-identical
// at any advisor worker count. Its Format output is the fingerprint the
// CI determinism smoke compares.
func TestRunCrashChaosDeterministicSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	res, err := experiments.RunCrashChaos(crashChaosTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(experiments.DefaultCrashChaosRates) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(experiments.DefaultCrashChaosRates))
	}
	for _, row := range res.Rows {
		for _, level := range res.Levels {
			c, ok := row.Cells[level.String()]
			if !ok {
				t.Fatalf("rate %g: missing %s cell", row.Rate, level)
			}
			if c.JournalRecords < 6 {
				t.Errorf("rate %g %s: only %d journal records — the sweep proves little", row.Rate, level, c.JournalRecords)
			}
			if c.CrashRuns != c.JournalRecords {
				t.Errorf("rate %g %s: %d crash runs over %d crash points", row.Rate, level, c.CrashRuns, c.JournalRecords)
			}
			if c.Verified != c.CrashRuns+1 {
				t.Errorf("rate %g %s: %d/%d runs verified", row.Rate, level, c.Verified, c.CrashRuns+1)
			}
			// Both recovery regimes must appear: early crashes resume
			// from the watermark, late ones roll forward.
			if c.Resumed == 0 || c.Completed == 0 {
				t.Errorf("rate %g %s: outcome histogram missed a regime: %+v", row.Rate, level, c)
			}
		}
	}
	// Handoff and read repair per rate, all restarts verified.
	if want := 2 * len(experiments.DefaultCrashChaosRates); len(res.Sites) != want {
		t.Fatalf("site episodes = %d, want %d", len(res.Sites), want)
	}
	for _, sc := range res.Sites {
		if !sc.Verified || sc.HintsQueued == 0 || sc.OpsToCrash == 0 {
			t.Errorf("site %s rate %g: incomplete episode: %+v", sc.Site, sc.Rate, sc)
		}
	}

	// Identical config and seed reproduce the sweep bit for bit, and
	// the advisor worker count must not change a single byte.
	again, err := experiments.RunCrashChaos(crashChaosTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Error("same seed produced a different sweep")
	}
	wide, err := experiments.RunCrashChaos(crashChaosTestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, wide) {
		t.Errorf("worker count changed the sweep:\n%s\nvs\n%s", res.Format(), wide.Format())
	}

	out := res.Format()
	if !strings.Contains(out, "read-repair") && !strings.Contains(out, "readrepair") && !strings.Contains(out, "read_repair") {
		t.Errorf("format output missing the site section:\n%s", out)
	}
}
