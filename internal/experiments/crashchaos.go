package experiments

import (
	"errors"
	"fmt"
	"strings"

	"nose/internal/backend"
	"nose/internal/cost"
	"nose/internal/executor"
	"nose/internal/faults"
	"nose/internal/harness"
	"nose/internal/hotel"
	"nose/internal/journal"
	"nose/internal/migrate"
	"nose/internal/obs"
	"nose/internal/schema"
	"nose/internal/search"
	"nose/internal/verify"
	"nose/internal/workload"
)

// CrashChaosConfig parameterizes the crash-recovery chaos sweep: a
// hotel-booking A -> B live migration is crashed at every journal
// append index, per (consistency level, node fault rate) cell of a
// replicated cluster, and recovered from the durable journal; every
// run must end in an invariant-verifier pass. A second sweep crashes
// the replica coordinator inside its hinted-handoff and read-repair
// paths and restarts over the surviving cluster.
type CrashChaosConfig struct {
	// Levels are the consistency levels swept (reads and writes);
	// empty means ONE, QUORUM, ALL.
	Levels []executor.Consistency
	// Rates is the node fault rate sweep; empty means
	// DefaultCrashChaosRates.
	Rates []float64
	// Nodes and RF shape the cluster; zero means the harness defaults
	// (5 nodes, RF 3).
	Nodes, RF int
	// Seed seeds the node fault domains; the same seed reproduces the
	// whole sweep bit for bit at any advisor worker count.
	Seed int64
	// Advisor tunes the schema advisor for the two recommendations.
	Advisor search.Options
	// ChunkRecords bounds records per backfill step; zero means 5 —
	// small, so the sweep has many distinct crash points.
	ChunkRecords int
	// Obs, when set, collects each system's merged metric registry.
	Obs *obs.Registry
}

// DefaultCrashChaosRates sweeps a healthy cluster and one with flaky
// replica operations, so crashes land both in calm and bad weather.
var DefaultCrashChaosRates = []float64{0, 0.02}

// CrashChaosCell is one (consistency level, node fault rate) journal
// crash sweep: a clean migration counts the journal appends, then one
// migration per append index is crashed exactly there and recovered.
type CrashChaosCell struct {
	// JournalRecords is the clean run's journal append count — the
	// number of crash points swept.
	JournalRecords int
	// CrashRuns counts the crashed-and-recovered migrations (one per
	// append index); Verified the runs whose invariant check passed
	// (the sweep errors out unless Verified == CrashRuns+1, clean run
	// included).
	CrashRuns, Verified int
	// Resumed, Completed, RolledBack and None partition the crash runs
	// by recovery outcome.
	Resumed, Completed, RolledBack, None int
	// RecopiedRecords totals the backfill records recovery re-copied
	// (snapshot size minus durable watermark) across resumed runs —
	// the data-movement cost of crashing.
	RecopiedRecords int
	// RecoverySimMillis totals the simulated time recovery's own
	// journal appends consumed across the cell's runs.
	RecoverySimMillis float64
	// Unavailable counts client statements lost to ErrUnavailable
	// while the sweep's migrations ran (nonzero only in bad weather).
	Unavailable int64
}

// CrashChaosRow is one node fault rate's cells, keyed by consistency
// level name (ONE/QUORUM/ALL).
type CrashChaosRow struct {
	// Rate is the injected node fault rate.
	Rate float64
	// Cells maps consistency level name to its sweep.
	Cells map[string]CrashChaosCell
}

// CrashChaosSiteCell is one coordinator crash-restart episode: hints
// are queued against a downed replica, the crash is armed inside the
// coordinator's handoff or read-repair path, and after it fires the
// cluster restarts with a fresh coordinator (in-memory hints lost).
type CrashChaosSiteCell struct {
	// Site is the armed crash site (faults.SiteHandoff or
	// faults.SiteReadRepair).
	Site string
	// Rate is the background node fault rate.
	Rate float64
	// HintsQueued is the coordinator's hint count when the crash was
	// armed; OpsToCrash how many statements ran before it fired.
	HintsQueued int64
	OpsToCrash  int
	// Verified reports the post-restart invariant check passed (the
	// sweep errors out otherwise).
	Verified bool
}

// CrashChaosResult is the full chaos sweep.
type CrashChaosResult struct {
	// Levels orders the swept consistency levels; Nodes and RF record
	// the cluster shape; ChunkRecords the backfill chunk bound.
	Levels       []executor.Consistency
	Nodes, RF    int
	ChunkRecords int
	// Rows has one entry per node fault rate, in Rates order.
	Rows []CrashChaosRow
	// Sites holds the coordinator crash-restart episodes, handoff and
	// read repair per fault rate, all at QUORUM (the level where both
	// paths are deterministically exercisable: ONE never repairs on
	// read, ALL never acknowledges past a downed replica).
	Sites []CrashChaosSiteCell
}

// chaosFixture is the sweep's shared, fault-independent half: the
// hotel dataset and the two advised recommendations whose diff is the
// migration every run crashes.
type chaosFixture struct {
	ds          *backend.Dataset
	recA, recB  *search.Recommendation
	build, drop []*schema.Index
	query       workload.Statement
	insert      workload.Statement
	queryParams executor.Params
	// queryCF is the family recA's plan reads for the city query —
	// the partition whose replicas the site sweep makes stale.
	queryCF string
}

// buildChaosFixture hand-builds the hotel dataset (Fig. 3's running
// example) and advises schema A (city query + reservation insert) and
// schema B (adding the prefix query), aligning B's family names onto
// A's so the migration's journal records are stable across runs.
func buildChaosFixture(cfg CrashChaosConfig) (*chaosFixture, error) {
	g := hotel.Graph()
	ds := backend.NewDataset(g)

	hotelE := g.MustEntity("Hotel")
	room := g.MustEntity("Room")
	guest := g.MustEntity("Guest")
	res := g.MustEntity("Reservation")
	const (
		nHotels = 4
		nRooms  = 12
		nGuests = 8
		nRes    = 24
	)
	for i := 0; i < nHotels; i++ {
		if err := ds.AddEntity(hotelE, map[string]backend.Value{
			"HotelID":   i,
			"HotelName": fmt.Sprintf("Hotel%d", i),
			"HotelCity": fmt.Sprintf("c%d", i%2),
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nRooms; i++ {
		if err := ds.AddEntity(room, map[string]backend.Value{
			"RoomID":   i,
			"RoomRate": float64(50 + (i%5)*20),
		}); err != nil {
			return nil, err
		}
		if err := ds.Connect(hotelE.Edge("Rooms"), int64(i%nHotels), int64(i)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nGuests; i++ {
		if err := ds.AddEntity(guest, map[string]backend.Value{
			"GuestID":    i,
			"GuestName":  fmt.Sprintf("Guest%d", i),
			"GuestEmail": fmt.Sprintf("g%d@example.com", i),
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nRes; i++ {
		if err := ds.AddEntity(res, map[string]backend.Value{
			"ResID": i, "ResEndDate": int64(1_600_000_000 + i*86_400),
		}); err != nil {
			return nil, err
		}
		if err := ds.Connect(room.Edge("Reservations"), int64(i%nRooms), int64(i)); err != nil {
			return nil, err
		}
		if err := ds.Connect(guest.Edge("Reservations"), int64(i%nGuests), int64(i)); err != nil {
			return nil, err
		}
	}

	q1 := workload.MustParseQuery(g, hotel.ExampleQuery)
	q1.Label = "GuestsByCity"
	ins := workload.MustParse(g, hotel.UpdateStatements[0])
	wA := workload.New(g)
	wA.Add(q1, 1)
	wA.Add(ins, 0.5)
	recA, err := search.Advise(wA, cfg.Advisor)
	if err != nil {
		return nil, fmt.Errorf("experiments: crashchaos: advise A: %w", err)
	}

	q2 := workload.MustParseQuery(g, hotel.PrefixQuery)
	q2.Label = "RoomsByCity"
	wB := workload.New(g)
	wB.Add(q1, 1)
	wB.Add(q2, 1)
	wB.Add(ins, 0.5)
	recB, err := search.Advise(wB, cfg.Advisor)
	if err != nil {
		return nil, fmt.Errorf("experiments: crashchaos: advise B: %w", err)
	}

	recB.Schema.AlignTo(recA.Schema)
	build, drop := migrate.Diff(recA.Schema, recB.Schema)
	if len(build) == 0 {
		return nil, errors.New("experiments: crashchaos: A -> B migration builds nothing; the sweep would be vacuous")
	}
	if len(recA.Queries) == 0 || len(recA.Queries[0].Plan.Indexes()) == 0 {
		return nil, errors.New("experiments: crashchaos: no plan for the city query")
	}
	return &chaosFixture{
		ds:          ds,
		recA:        recA,
		recB:        recB,
		build:       build,
		drop:        drop,
		query:       q1,
		insert:      ins,
		queryParams: executor.Params{"city": "c0", "rate": 60.0},
		queryCF:     recA.Queries[0].Plan.Indexes()[0].Name,
	}, nil
}

// insertParams yields a distinct reservation insert for step i; room 0
// keeps the write in city c0's partition.
func chaosInsertParams(base, i int) executor.Params {
	return executor.Params{
		"rid":    int64(base + i),
		"date":   int64(1_700_000_000 + i*86_400),
		"gid":    int64(i % 8),
		"roomid": int64(i % 12),
	}
}

// chaosRun executes one A -> B live migration on a fresh replicated
// cluster with the journal crash armed at append index armAt (negative
// arms nothing), interleaving a query and an insert per step. A crash
// restarts over the surviving cluster, recovers from the reopened
// journal, drains a resumed migration, and runs the invariant check.
func chaosRun(f *chaosFixture, cfg CrashChaosConfig, rc harness.ReplicationConfig,
	rate float64, seed, armAt int64, cell *CrashChaosCell) error {
	sys, err := harness.NewReplicatedSystem("crashchaos", f.ds, f.recA, cost.DefaultParams(), rc)
	if err != nil {
		return err
	}
	v := verify.New()
	sys.AttachVerifier(v)
	sys.EnableNodeFaults(seed, faults.NodeRate(rate), executor.DefaultRetryPolicy())
	cr := faults.NewCrashes()
	if armAt >= 0 {
		cr.Arm(faults.SiteJournal, armAt)
	}
	j := journal.New(journal.Options{Crashes: cr})
	sys.AttachJournal(j)
	sys.EnableCrashes(cr)

	// Unlimited fault budget: bad-weather backfill retries instead of
	// aborting, so the sweep measures crashes, not budget policy (the
	// budget boundary has its own tests).
	liveOpts := migrate.LiveOptions{ChunkRecords: cfg.ChunkRecords, FaultBudget: -1, Params: migrate.DefaultCostParams()}
	pr := &search.PhaseRecommendation{Rec: f.recB, Build: f.build, Drop: f.drop}
	crashed := false
	if _, err := sys.StartLiveMigration(f.ds, pr, liveOpts); err != nil {
		if !faults.IsCrash(err) {
			return fmt.Errorf("arm %d: start: %w", armAt, err)
		}
		crashed = true
	}
	for i := 0; !crashed && sys.LiveActive(); i++ {
		if i > 10_000 {
			return fmt.Errorf("arm %d: migration neither finished nor crashed", armAt)
		}
		if _, err := sys.LiveStep(); err != nil {
			if faults.IsCrash(err) {
				crashed = true
				break
			}
			return fmt.Errorf("arm %d: step %d: %w", armAt, i, err)
		}
		for _, stmt := range []struct {
			s workload.Statement
			p executor.Params
		}{{f.query, f.queryParams}, {f.insert, chaosInsertParams(10_000, i)}} {
			switch _, err := sys.ExecStatement(stmt.s, stmt.p); {
			case err == nil:
			case errors.Is(err, harness.ErrUnavailable):
				// The degraded outcome bad weather buys: count it and
				// keep the migration moving.
				cell.Unavailable++
			case faults.IsCrash(err):
				crashed = true
			default:
				return fmt.Errorf("arm %d: statement at step %d: %w", armAt, i, err)
			}
		}
	}
	if !crashed {
		if armAt >= 0 {
			return fmt.Errorf("arm %d: armed crash never fired", armAt)
		}
		rep, err := sys.VerifyCheck()
		if err != nil {
			return err
		}
		if !rep.OK() {
			return fmt.Errorf("clean run failed verification:\n%s", rep.Format())
		}
		cell.JournalRecords = j.Records()
		cell.Verified++
		cfg.Obs.Merge(sys.Obs())
		return nil
	}

	// Restart: reopen the durable journal over the surviving cluster
	// with a fresh coordinator, re-attach the cross-crash verifier,
	// replay, finish what recovery decided, verify.
	j2, recs, err := journal.Open(j.Durable(), journal.Options{})
	if err != nil {
		return fmt.Errorf("arm %d: reopen journal: %w", armAt, err)
	}
	sys2 := harness.NewReplicatedSystemFromStore("recovered", sys.Repl, sys.Rec(), cost.DefaultParams(), rc)
	sys2.AttachVerifier(v)
	sys2.AttachJournal(j2)
	rep, err := sys2.Recover(f.ds, recs, pr, harness.RecoverOptions{Live: liveOpts})
	if err != nil {
		return fmt.Errorf("arm %d: recover: %w", armAt, err)
	}
	cell.CrashRuns++
	cell.RecoverySimMillis += rep.SimMillis
	switch rep.Outcome {
	case harness.RecoverResumed:
		cell.Resumed++
		cell.RecopiedRecords += rep.TotalRecords - rep.Watermark
		if st, err := sys2.DrainLiveMigration(0); err != nil || st != migrate.StateDone {
			return fmt.Errorf("arm %d: drain resumed migration: state %v, err %w", armAt, st, err)
		}
	case harness.RecoverCompleted:
		cell.Completed++
	case harness.RecoverRolledBack:
		cell.RolledBack++
	case harness.RecoverNone:
		cell.None++
	}
	vrep, err := sys2.VerifyCheck()
	if err != nil {
		return fmt.Errorf("arm %d: verify: %w", armAt, err)
	}
	if !vrep.OK() {
		return fmt.Errorf("arm %d: invariants violated after recovery (outcome %v):\n%s",
			armAt, rep.Outcome, vrep.Format())
	}
	cell.Verified++
	// Whatever recovery decided, the recovered system must serve.
	if _, err := sys2.ExecStatement(f.query, f.queryParams); err != nil {
		return fmt.Errorf("arm %d: query after recovery: %w", armAt, err)
	}
	cfg.Obs.Merge(sys2.Obs())
	return nil
}

// chaosSiteRun is one coordinator crash-restart episode at QUORUM: a
// replica of the query family's c0 partition goes down, writes queue
// hints against it, it comes back, and the armed crash fires inside
// hint replay (handoff) or divergence repair (read repair). The
// cluster then restarts with a fresh coordinator — hints die with the
// process — and the verifier checks every acknowledged write is still
// durable somewhere.
func chaosSiteRun(f *chaosFixture, cfg CrashChaosConfig, rc harness.ReplicationConfig,
	rate float64, seed int64, site string) (CrashChaosSiteCell, error) {
	out := CrashChaosSiteCell{Site: site, Rate: rate}
	rc.Read, rc.Write = executor.Quorum, executor.Quorum
	sys, err := harness.NewReplicatedSystem("crashchaos-site", f.ds, f.recA, cost.DefaultParams(), rc)
	if err != nil {
		return out, err
	}
	v := verify.New()
	sys.AttachVerifier(v)
	sys.EnableNodeFaults(seed, faults.NodeRate(rate), executor.DefaultRetryPolicy())
	cr := faults.NewCrashes()
	sys.EnableCrashes(cr)

	replicas := sys.Repl.ReplicasFor(f.queryCF, []backend.Value{"c0"})
	if len(replicas) == 0 {
		return out, fmt.Errorf("%s: no replicas for %s", site, f.queryCF)
	}
	if err := sys.MarkNodeDown(replicas[0]); err != nil {
		return out, err
	}
	for i := 0; i < 6; i++ {
		p := chaosInsertParams(20_000, i)
		p["roomid"] = int64(2 * (i % 6)) // even rooms sit in c0 hotels
		switch _, err := sys.ExecStatement(f.insert, p); {
		case err == nil:
		case errors.Is(err, harness.ErrUnavailable):
		default:
			return out, fmt.Errorf("%s: write with a replica down: %w", site, err)
		}
	}
	out.HintsQueued = sys.Robustness().Replica.HintsQueued
	if out.HintsQueued == 0 {
		return out, fmt.Errorf("%s: no hints queued against the downed replica", site)
	}
	if err := sys.MarkNodeUp(replicas[0]); err != nil {
		return out, err
	}

	// Arm at the site's current count, not index 0: a flaky node fault
	// during seeding can queue a hint on an up node, and the statement
	// retry replays it — consuming earlier occurrences before arming.
	cr.Arm(site, cr.Count(site))
	crashed := false
	// The bound must outlast a node-fault down window (DefaultDownOps
	// = 40 ops): an unlucky seed can open one on the hinted replica
	// right after MarkNodeUp, and until it closes every write against
	// the replica queues another hint instead of replaying — the armed
	// crash cannot fire while the window holds.
	for i := 0; i < 200 && !crashed; i++ {
		var err error
		if site == faults.SiteHandoff {
			p := chaosInsertParams(21_000, i)
			p["roomid"] = int64(0)
			_, err = sys.ExecStatement(f.insert, p)
		} else {
			_, err = sys.ExecStatement(f.query, f.queryParams)
		}
		switch {
		case faults.IsCrash(err):
			crashed = true
			out.OpsToCrash = i + 1
		case err == nil, errors.Is(err, harness.ErrUnavailable):
		default:
			return out, fmt.Errorf("%s: non-crash error: %w", site, err)
		}
	}
	if !crashed {
		return out, fmt.Errorf("%s: armed crash never fired", site)
	}

	sys2 := harness.NewReplicatedSystemFromStore("restarted", sys.Repl, sys.Rec(), cost.DefaultParams(), rc)
	sys2.AttachVerifier(v)
	sys2.AttachJournal(journal.New(journal.Options{}))
	rep, err := sys2.Recover(f.ds, nil, nil, harness.RecoverOptions{})
	if err != nil {
		return out, fmt.Errorf("%s: recover: %w", site, err)
	}
	if rep.Outcome != harness.RecoverNone {
		return out, fmt.Errorf("%s: recover outcome %v, want none (no migration in flight)", site, rep.Outcome)
	}
	vrep, err := sys2.VerifyCheck()
	if err != nil {
		return out, err
	}
	if !vrep.OK() {
		return out, fmt.Errorf("%s: invariants violated after restart:\n%s", site, vrep.Format())
	}
	if _, err := sys2.ExecStatement(f.query, f.queryParams); err != nil {
		return out, fmt.Errorf("%s: query after restart: %w", site, err)
	}
	out.Verified = true
	cfg.Obs.Merge(sys2.Obs())
	return out, nil
}

// RunCrashChaos is the deterministic crash-recovery chaos sweep: per
// (consistency level, node fault rate) cell it runs one clean hotel
// A -> B live migration to count the journal's append indices, then
// re-runs the migration once per index with a crash armed exactly
// there, recovering each from the durable journal and checking the
// verifier's invariants — no acknowledged write lost, old and new
// families agree at cutover, no orphan families. A second sweep
// crashes the replica coordinator inside hinted handoff and read
// repair and restarts it. Any invariant violation fails the whole run;
// the same config and seed reproduce every byte at any advisor worker
// count.
func RunCrashChaos(cfg CrashChaosConfig) (*CrashChaosResult, error) {
	levels := cfg.Levels
	if len(levels) == 0 {
		levels = []executor.Consistency{executor.One, executor.Quorum, executor.All}
	}
	rates := cfg.Rates
	if len(rates) == 0 {
		rates = DefaultCrashChaosRates
	}
	if cfg.ChunkRecords <= 0 {
		cfg.ChunkRecords = 5
	}
	f, err := buildChaosFixture(cfg)
	if err != nil {
		return nil, err
	}

	repl := harness.ReplicationConfig{Nodes: cfg.Nodes, RF: cfg.RF}.Normalized()
	res := &CrashChaosResult{Levels: levels, Nodes: repl.Nodes, RF: repl.RF, ChunkRecords: cfg.ChunkRecords}
	lane := int64(0)
	for _, rate := range rates {
		row := CrashChaosRow{Rate: rate, Cells: map[string]CrashChaosCell{}}
		for _, level := range levels {
			rc := repl
			rc.Read, rc.Write = level, level
			lane++
			seed := cfg.Seed + lane
			cell := CrashChaosCell{}
			// Clean run first: its append count is the sweep's crash
			// point list.
			if err := chaosRun(f, cfg, rc, rate, seed, -1, &cell); err != nil {
				return nil, fmt.Errorf("experiments: crashchaos %s rate %g: %w", level, rate, err)
			}
			for k := 0; k < cell.JournalRecords; k++ {
				if err := chaosRun(f, cfg, rc, rate, seed, int64(k), &cell); err != nil {
					return nil, fmt.Errorf("experiments: crashchaos %s rate %g: %w", level, rate, err)
				}
			}
			row.Cells[level.String()] = cell
		}
		res.Rows = append(res.Rows, row)
	}
	for _, rate := range rates {
		for _, site := range []string{faults.SiteHandoff, faults.SiteReadRepair} {
			lane++
			cell, err := chaosSiteRun(f, cfg, repl, rate, cfg.Seed+lane, site)
			if err != nil {
				return nil, fmt.Errorf("experiments: crashchaos site sweep rate %g: %w", rate, err)
			}
			res.Sites = append(res.Sites, cell)
		}
	}
	return res, nil
}

// Format renders the sweep as the recovery-cost table: per cell, the
// crash points swept, the recovery outcome histogram, the records
// recovery had to re-copy, the simulated time its journal appends
// cost, and the verifier tally (a run that failed verification aborts
// the sweep, so Verified always equals runs here — the column is the
// receipt).
func (r *CrashChaosResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d nodes, RF %d; backfill chunk %d records; crash at every journal append index\n",
		r.Nodes, r.RF, r.ChunkRecords)
	fmt.Fprintf(&b, "%-8s %-8s %8s %6s %8s %8s %8s %5s %7s %9s %12s %9s\n",
		"Rate", "Level", "Records", "Runs", "Resumed", "RollFwd", "RollBack", "NoOp", "Unavail", "Recopied", "Recovery(ms)", "Verified")
	for _, row := range r.Rows {
		for _, level := range r.Levels {
			c := row.Cells[level.String()]
			fmt.Fprintf(&b, "%-8.3f %-8s %8d %6d %8d %8d %8d %5d %7d %9d %12.3f %6d/%d\n",
				row.Rate, level, c.JournalRecords, c.CrashRuns,
				c.Resumed, c.Completed, c.RolledBack, c.None, c.Unavailable,
				c.RecopiedRecords, c.RecoverySimMillis, c.Verified, c.CrashRuns+1)
		}
	}
	fmt.Fprintf(&b, "coordinator crash-restart (QUORUM): crash inside hint replay and read repair, restart, verify\n")
	fmt.Fprintf(&b, "%-8s %-12s %6s %11s %9s\n", "Rate", "Site", "Hints", "OpsToCrash", "Verified")
	for _, c := range r.Sites {
		fmt.Fprintf(&b, "%-8.3f %-12s %6d %11d %9t\n", c.Rate, c.Site, c.HintsQueued, c.OpsToCrash, c.Verified)
	}
	return b.String()
}
