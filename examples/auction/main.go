// Auction: the paper's full evaluation scenario end to end. Builds the
// RUBiS-derived auction site model, recommends a schema for the bidding
// mix, loads a generated dataset into the simulated record store, and
// executes live transactions against the recommendation — comparing
// response times with the normalized baseline.
//
//	go run ./examples/auction
package main

import (
	"fmt"
	"log"

	"nose/internal/baselines"
	"nose/internal/cost"
	"nose/internal/harness"
	"nose/internal/planner"
	"nose/internal/rubis"
	"nose/internal/search"
)

func main() {
	cfg := rubis.Config{Users: 2_000, Seed: 1}

	fmt.Println("Generating RUBiS dataset...")
	ds, err := rubis.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	w, txns, err := rubis.Workload(ds.Graph)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Running the schema advisor (bidding mix)...")
	rec, err := search.Advise(w, search.Options{
		Planner: planner.Config{MaxPlansPerQuery: 24},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NoSE recommends %d column families (%.1f MB) in %v\n\n",
		rec.Schema.Len(), rec.Schema.TotalSizeBytes()/1e6, rec.Timings.Total)

	normPool, err := baselines.Normalized(w)
	if err != nil {
		log.Fatal(err)
	}
	normRec, err := baselines.Recommend(w, normPool, cost.Default(), planner.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Installing both schemas into the simulated record store...")
	noseSys, err := harness.NewSystem("NoSE", ds, rec, cost.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	normSys, err := harness.NewSystem("Normalized", ds, normRec, cost.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-24s %14s %14s\n", "Transaction", "NoSE (ms)", "Normalized")
	const executions = 20
	for _, txn := range txns {
		var totals [2]float64
		for i, sys := range []*harness.System{noseSys, normSys} {
			ps := rubis.NewParamSource(cfg, 7)
			for n := 0; n < executions; n++ {
				ms, err := sys.ExecTransaction(txn.Statements, ps.Params(txn.Name))
				if err != nil {
					log.Fatalf("%s on %s: %v", txn.Name, sys.Name, err)
				}
				totals[i] += ms
			}
		}
		fmt.Printf("%-24s %14.3f %14.3f\n",
			txn.Name, totals[0]/executions, totals[1]/executions)
	}
}
