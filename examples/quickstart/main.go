// Quickstart: recommend a schema for the paper's hotel booking example
// (Fig. 1) and print the recommended column families and query plans.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nose"
)

func main() {
	// The conceptual model: an entity graph (paper Fig. 1, abridged).
	g := nose.NewGraph()
	hotel := g.AddEntity("Hotel", "HotelID", 100)
	hotel.AddAttribute("HotelName", nose.StringType)
	hotel.AddAttributeCard("HotelCity", nose.StringType, 50)

	room := g.AddEntity("Room", "RoomID", 10_000)
	room.AddAttributeCard("RoomNumber", nose.IntegerType, 100)
	room.AddAttributeCard("RoomRate", nose.FloatType, 200)

	guest := g.AddEntity("Guest", "GuestID", 50_000)
	guest.AddAttribute("GuestName", nose.StringType)
	guest.AddAttribute("GuestEmail", nose.StringType)

	reservation := g.AddEntity("Reservation", "ResID", 250_000)
	reservation.AddAttributeCard("ResStartDate", nose.DateType, 3650)

	g.MustAddRelationship("Hotel", "Rooms", "Room", "Hotel", nose.OneToMany)
	g.MustAddRelationship("Room", "Reservations", "Reservation", "Room", nose.OneToMany)
	g.MustAddRelationship("Guest", "Reservations", "Reservation", "Guest", nose.OneToMany)

	// The workload: the paper's Fig. 3 query plus an update that
	// pressures the advisor away from over-denormalizing guest names.
	w := nose.NewWorkload(g)
	w.Add(nose.MustParse(g, `
		SELECT Guest.GuestName, Guest.GuestEmail FROM Guest
		WHERE Guest.Reservations.Room.Hotel.HotelCity = ?city
		AND Guest.Reservations.Room.RoomRate > ?rate`), 0.8)
	w.Add(nose.MustParse(g, `
		SELECT Room.RoomNumber FROM Room
		WHERE Room.Hotel.HotelCity = ?city ORDER BY Room.RoomRate`), 0.15)
	w.Add(nose.MustParse(g, `
		UPDATE Guest SET GuestName = ? WHERE Guest.GuestID = ?`), 0.05)

	rec, err := nose.Advise(w, nose.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Recommended schema (%d column families, ~%.1f MB):\n\n",
		rec.Schema.Len(), rec.Schema.TotalSizeBytes()/1e6)
	fmt.Print(rec.Schema)

	fmt.Println("\nQuery implementation plans:")
	for _, qr := range rec.Queries {
		fmt.Println()
		fmt.Print(qr.Plan)
	}

	fmt.Println("\nUpdate maintenance:")
	for _, ur := range rec.Updates {
		fmt.Printf("  %s\n", ur.Plan)
	}
	fmt.Printf("\nEstimated weighted workload cost: %.4f (advisor ran in %v)\n",
		rec.Cost, rec.Timings.Total)
}
