// Analytics: an update-heavy telemetry scenario demonstrating the two
// levers the paper highlights — write pressure constraining
// denormalization (§VI) and the optional storage budget trading space
// for query cost (§III-D). The same workload is advised three times:
// read-mostly, write-heavy, and read-mostly with a tight space budget.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"

	"nose"
)

func buildModel() *nose.Graph {
	g := nose.NewGraph()
	fleet := g.AddEntity("Fleet", "FleetID", 50)
	fleet.AddAttributeCard("FleetRegion", nose.StringType, 10)
	fleet.AddAttribute("FleetName", nose.StringType)

	device := g.AddEntity("Device", "DeviceID", 50_000)
	device.AddAttributeCard("DeviceModel", nose.StringType, 40)
	device.AddAttributeCard("DeviceStatus", nose.StringType, 4)

	reading := g.AddEntity("Reading", "ReadingID", 5_000_000)
	reading.AddAttributeCard("ReadingTime", nose.DateType, 100_000)
	reading.AddAttribute("ReadingValue", nose.FloatType)

	g.MustAddRelationship("Fleet", "Devices", "Device", "Fleet", nose.OneToMany)
	g.MustAddRelationship("Device", "Readings", "Reading", "Device", nose.OneToMany)
	return g
}

func buildWorkload(g *nose.Graph, writeWeight float64) *nose.Workload {
	w := nose.NewWorkload(g)
	// Dashboard: recent readings (with device status) for all devices
	// of a region.
	w.Add(nose.MustParse(g, `
		SELECT Reading.ReadingValue, Reading.ReadingTime, Device.DeviceStatus FROM Reading
		WHERE Reading.Device.Fleet.FleetRegion = ?region
		AND Reading.ReadingTime > ?since`), 1.0)
	// Device drill-down, newest first.
	w.Add(nose.MustParse(g, `
		SELECT Readings.ReadingValue, Readings.ReadingTime FROM Device.Readings
		WHERE Device.DeviceID = ?device ORDER BY Readings.ReadingTime LIMIT 100`), 0.8)
	// Status flips are frequent in the write-heavy regime.
	w.Add(nose.MustParse(g, `
		UPDATE Device SET DeviceStatus = ? WHERE Device.DeviceID = ?`), writeWeight)
	// Telemetry ingest.
	w.Add(nose.MustParse(g, `
		INSERT INTO Reading SET ReadingID = ?, ReadingTime = ?, ReadingValue = ?
		AND CONNECT TO Device(?device)`), writeWeight*2)
	return w
}

func report(tag string, rec *nose.Recommendation) {
	fmt.Printf("--- %s ---\n", tag)
	fmt.Printf("cost %.4f, %d column families, ~%.0f MB\n",
		rec.Cost, rec.Schema.Len(), rec.Schema.TotalSizeBytes()/1e6)
	fmt.Print(rec.Schema)
	fmt.Println()
}

func main() {
	g := buildModel()

	readMostly, err := nose.Advise(buildWorkload(g, 0.01), nose.Options{})
	if err != nil {
		log.Fatal(err)
	}
	report("read-mostly", readMostly)

	writeHeavy, err := nose.Advise(buildWorkload(g, 50), nose.Options{})
	if err != nil {
		log.Fatal(err)
	}
	report("write-heavy (denormalization constrained)", writeHeavy)

	budget := readMostly.Schema.TotalSizeBytes() * 0.6
	constrained, err := nose.Advise(buildWorkload(g, 0.01), nose.Options{
		SpaceBudgetBytes: budget,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("read-mostly under a %.0f MB budget", budget/1e6), constrained)

	fmt.Println("Note how write pressure normalizes the schema and the budget")
	fmt.Println("trades materialized views for extra lookups at query time.")
}
